"""Whole-program symbol table and call graph over the analyzed tree.

The per-module rules (DET001…OBS001) see one file at a time; the
interprocedural rules (:mod:`repro.analysis.iprules`) need to know *who
calls whom across the whole program* — a wall-clock read is just as
fatal three calls deep inside an event callback as it is inline. This
module builds that view:

* a **symbol table**: every module, class, function, and method under
  the analyzed roots, keyed by dotted qualname
  (``repro.netsim.engine.Simulator.run``, nested defs as
  ``pkg.mod.outer.<locals>.tick``);
* **conservative receiver-type inference**: parameter/attribute
  annotations, dataclass fields, ``self.x = <annotated param>`` /
  ``self.x = ClassName(...)`` assignments, and attribute chains rooted
  at ``self`` or a typed local (``self.net.sim`` resolves through
  ``Network.sim: Simulator``);
* **call edges**: direct calls, constructor calls (edge to
  ``__init__``), and method calls through inferred receivers (walking
  base classes);
* **callback-registration edges**: arguments handed to the event-loop
  registration APIs — ``Simulator.schedule/schedule_at/post/post_at``
  (and the ``ServiceContext``/``EnvHandle`` delegates of the same
  name), ``Timer``/``PeriodicTask`` constructors, core-store
  ``watch``/``watch_prefix``/``watch_group``, and pipe
  ``set_transmit`` handlers — are resolved to their target functions
  and treated as calls-from-the-event-loop;
* **external calls**: calls that resolve to an imported module rather
  than project code are recorded with their dotted name
  (``time.sleep``, ``random.Random``) for the purity rules.

Soundness caveats (documented, deliberate): resolution is
*conservative* — a method call through a receiver whose type cannot be
inferred produces **no** edge (never a guessed one), dynamic dispatch
through ``getattr`` is invisible, and module-level statements are not
graphed. Class names are resolved through imports first, then by
program-wide unique bare name. The interprocedural rules therefore
under-approximate reachability but never invent it; the registration
APIs are matched by name even on untyped receivers so event-callback
*roots* are over-approximated instead (better to vet too many
callbacks for purity than too few).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Union

from .engine import ModuleContext

FunctionDefLike = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

#: Event-loop registration APIs: method (or constructor) name -> index of
#: the callback argument in the call's positional args, and its keyword
#: name. ``Timer``/``PeriodicTask`` are constructors; the rest methods.
REGISTRATION_APIS: dict[str, tuple[int, str]] = {
    "schedule": (1, "callback"),
    "schedule_at": (1, "callback"),
    "post": (1, "callback"),
    "post_at": (1, "callback"),
    "watch": (1, "callback"),
    "watch_prefix": (1, "callback"),
    "watch_group": (1, "callback"),
    "set_transmit": (0, "transmit"),
    "Timer": (1, "callback"),
    "PeriodicTask": (2, "callback"),
}


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a path relative to the analysis root.

    ``src/repro/core/ilp.py`` -> ``repro.core.ilp``; a package
    ``__init__.py`` names the package itself; an absolute/underived path
    falls back to its stem.
    """
    parts = rel_path.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return rel_path
    last = parts[-1]
    if last.endswith(".py"):
        parts[-1] = last[:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    parts = [p for p in parts if p and not p.startswith("/")]
    if not parts:  # a bare __init__.py at the root
        return "__init__"
    # Absolute paths (no root given) keep only the stem.
    if rel_path.startswith("/"):
        return parts[-1]
    return ".".join(parts)


@dataclass(slots=True)
class ExternalCall:
    """A call that resolved to an imported module, e.g. ``time.sleep``."""

    dotted: str
    node: ast.Call


@dataclass(slots=True)
class CallEdge:
    """A resolved project-internal call from one function to another."""

    target: str  # callee qualname
    node: ast.AST


@dataclass(slots=True)
class AttrWrite:
    """An attribute store ``recv.attr = / += …`` (or a constructor kwarg)."""

    attr: str
    receiver_class: Optional[str]  # class qualname when inferred, else None
    node: ast.AST


@dataclass(slots=True)
class Registration:
    """A callback handed to an event-loop registration API."""

    api: str  # the REGISTRATION_APIS key that matched
    callback: Optional[str]  # resolved callback qualname, None if opaque
    registrar: str  # qualname of the function containing the call
    node: ast.Call


@dataclass(slots=True)
class LedgerDecl:
    """A module-level ``CONSERVATION_LEDGERS`` entry: class -> fields."""

    class_name: str
    fields: tuple[str, ...]
    module: str
    node: ast.AST


@dataclass(slots=True)
class FunctionInfo:
    """One function/method/lambda in the symbol table."""

    qualname: str
    module: "ModuleInfo"
    node: FunctionDefLike
    class_qual: Optional[str] = None
    calls: list[CallEdge] = field(default_factory=list)
    external_calls: list[ExternalCall] = field(default_factory=list)
    registrations: list[Registration] = field(default_factory=list)
    attr_writes: list[AttrWrite] = field(default_factory=list)

    @property
    def short_name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass(slots=True)
class ClassInfo:
    """One class: methods, annotated attributes, bases."""

    qualname: str
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)  # resolved qualnames
    base_exprs: list[ast.expr] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)
    #: attribute -> annotation expression (resolved lazily to a class)
    attr_annotations: dict[str, ast.expr] = field(default_factory=dict)
    #: attribute -> resolved class qualname (filled in the resolve pass)
    attr_types: dict[str, str] = field(default_factory=dict)
    #: annotated field -> (annotation source text, AnnAssign node) —
    #: dataclass fields and class-body AnnAssigns, for the ledger rule.
    fields: dict[str, tuple[str, ast.AnnAssign]] = field(default_factory=dict)
    is_dataclass: bool = False


class ModuleInfo:
    """Per-module symbol and import facts feeding the program graph."""

    __slots__ = (
        "name",
        "ctx",
        "import_modules",
        "import_names",
        "top_defs",
        "constants",
    )

    def __init__(self, name: str, ctx: ModuleContext) -> None:
        self.name = name
        self.ctx = ctx
        #: local alias -> dotted module it names (``import a.b as c``)
        self.import_modules: dict[str, str] = {}
        #: local alias -> fully dotted origin (``from a.b import C``)
        self.import_names: dict[str, str] = {}
        #: top-level def/class name -> qualname
        self.top_defs: dict[str, str] = {}
        #: module-level constant assignments (seed-provenance lookups)
        self.constants: dict[str, ast.expr] = {}


class ProgramGraph:
    """The whole-program symbol table plus resolved call/callback edges."""

    def __init__(self, contexts: list[ModuleContext]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._class_by_name: dict[str, list[str]] = {}
        self.registrations: list[Registration] = []
        self.ledger_decls: list[LedgerDecl] = []
        for ctx in contexts:
            self._index_module(ctx)
        self._resolve_types()
        for info in list(self.functions.values()):
            # Nested defs are walked by their enclosing function's visitor
            # (which carries closure-local types and the enclosing class),
            # never independently — walking both would duplicate edges.
            if ".<locals>." in info.qualname:
                continue
            _EdgeVisitor(self, info).run()
        for info in self.functions.values():
            self.registrations.extend(info.registrations)

    # -- indexing ----------------------------------------------------------
    def _index_module(self, ctx: ModuleContext) -> None:
        name = module_name_for(ctx.rel_path)
        mod = ModuleInfo(name, ctx)
        if name in self.modules:  # duplicate stem (absolute paths); last wins
            name = ctx.rel_path
            mod.name = name
        self.modules[name] = mod
        self._collect_imports(mod, ctx.tree)
        for stmt in ctx.tree.body:
            self._index_statement(mod, stmt, prefix=name, class_info=None)

    def _collect_imports(self, mod: ModuleInfo, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.import_modules[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_import_base(mod, node)
                if base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    mod.import_names[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _resolve_import_base(
        self, mod: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if not node.level:
            return node.module
        # Relative import: climb from the current package. A module's
        # package is its dotted name minus the final component (packages
        # themselves already dropped ``__init__``).
        rel = mod.ctx.rel_path.replace("\\", "/")
        is_package = rel.endswith("__init__.py")
        parts = mod.name.split(".")
        if not is_package:
            parts = parts[:-1]
        climb = node.level - 1
        if climb:
            parts = parts[:-climb] if climb < len(parts) else []
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None

    def _index_statement(
        self,
        mod: ModuleInfo,
        stmt: ast.stmt,
        prefix: str,
        class_info: Optional[ClassInfo],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}.{stmt.name}"
            info = FunctionInfo(
                qualname=qual,
                module=mod,
                node=stmt,
                class_qual=class_info.qualname if class_info else None,
            )
            self.functions[qual] = info
            if class_info is not None:
                class_info.methods.setdefault(stmt.name, qual)
                self._note_self_assignments(class_info, stmt)
            elif prefix == mod.name:
                mod.top_defs[stmt.name] = qual
            for inner in stmt.body:
                self._index_statement(
                    mod, inner, prefix=f"{qual}.<locals>", class_info=None
                )
        elif isinstance(stmt, ast.ClassDef):
            qual = f"{prefix}.{stmt.name}"
            cls = ClassInfo(
                qualname=qual,
                name=stmt.name,
                module=mod,
                node=stmt,
                base_exprs=list(stmt.bases),
                is_dataclass=_is_dataclass(stmt),
            )
            self.classes[qual] = cls
            self._class_by_name.setdefault(stmt.name, []).append(qual)
            if prefix == mod.name:
                mod.top_defs[stmt.name] = qual
            for inner in stmt.body:
                if isinstance(inner, ast.AnnAssign) and isinstance(
                    inner.target, ast.Name
                ):
                    cls.attr_annotations[inner.target.id] = inner.annotation
                    cls.fields[inner.target.id] = (
                        ast.unparse(inner.annotation),
                        inner,
                    )
                self._index_statement(mod, inner, prefix=qual, class_info=cls)
        elif isinstance(stmt, ast.Assign) and class_info is None:
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if target.id == "CONSERVATION_LEDGERS" and isinstance(
                        stmt.value, ast.Dict
                    ):
                        self._index_ledgers(mod, stmt.value)
                    mod.constants.setdefault(target.id, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and class_info is None:
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                mod.constants.setdefault(stmt.target.id, stmt.value)

    def _index_ledgers(self, mod: ModuleInfo, value: ast.Dict) -> None:
        for key, entry in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            fields = tuple(
                inner.value
                for inner in ast.walk(entry)
                if isinstance(inner, ast.Constant) and isinstance(inner.value, str)
            )
            self.ledger_decls.append(
                LedgerDecl(
                    class_name=key.value,
                    fields=fields,
                    module=mod.name,
                    node=key,
                )
            )

    def _note_self_assignments(
        self, cls: ClassInfo, fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        """Record ``self.x`` attribute types visible from ``fn``'s body."""
        param_ann: dict[str, ast.expr] = {
            arg.arg: arg.annotation
            for arg in list(fn.args.posonlyargs)
            + list(fn.args.args)
            + list(fn.args.kwonlyargs)
            if arg.annotation is not None
        }
        for node in ast.walk(fn):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, None
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls.attr_annotations.setdefault(target.attr, node.annotation)
                continue
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if attr in cls.attr_annotations:
                continue
            if isinstance(value, ast.Name) and value.id in param_ann:
                cls.attr_annotations[attr] = param_ann[value.id]
            elif isinstance(value, ast.Call):
                cls.attr_annotations.setdefault(attr, value.func)

    # -- resolution --------------------------------------------------------
    def _resolve_types(self) -> None:
        for cls in self.classes.values():
            cls.bases = [
                resolved
                for expr in cls.base_exprs
                if (resolved := self._resolve_class_expr(expr, cls.module))
                is not None
            ]
        for cls in self.classes.values():
            for attr, ann in cls.attr_annotations.items():
                resolved = self._resolve_class_expr(ann, cls.module)
                if resolved is not None:
                    cls.attr_types[attr] = resolved

    def _resolve_class_expr(
        self, expr: ast.expr, mod: ModuleInfo
    ) -> Optional[str]:
        """Class qualname an annotation/base/constructor expression names."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            try:
                expr = ast.parse(expr.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(expr, ast.Subscript):
            base = expr.value
            if isinstance(base, ast.Name) and base.id == "Optional":
                return self._resolve_class_expr(expr.slice, mod)
            if isinstance(base, ast.Attribute) and base.attr == "Optional":
                return self._resolve_class_expr(expr.slice, mod)
            return self._resolve_class_expr(base, mod)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
            left = self._resolve_class_expr(expr.left, mod)
            return left or self._resolve_class_expr(expr.right, mod)
        if isinstance(expr, ast.Name):
            return self.resolve_class_name(expr.id, mod)
        if isinstance(expr, ast.Attribute):
            dotted = _dotted_name(expr)
            if dotted is None:
                return None
            head, _, rest = dotted.partition(".")
            target_mod = mod.import_modules.get(head)
            if target_mod is not None and rest:
                candidate = f"{target_mod}.{rest}"
                if candidate in self.classes:
                    return candidate
            return self.resolve_class_name(dotted.rsplit(".", 1)[-1], mod)
        return None

    def resolve_class_name(self, name: str, mod: ModuleInfo) -> Optional[str]:
        """Resolve a bare class name: local defs, imports, unique name."""
        local = mod.top_defs.get(name)
        if local in self.classes:
            return local
        origin = mod.import_names.get(name)
        if origin is not None:
            if origin in self.classes:
                return origin
            # ``from a.b import C`` where a.b re-exports C from elsewhere:
            # fall through to the unique-name match.
            tail = origin.rsplit(".", 1)[-1]
            candidates = self._class_by_name.get(tail, [])
            if len(candidates) == 1:
                return candidates[0]
            return None
        candidates = self._class_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def method_on(self, class_qual: str, name: str) -> Optional[str]:
        """Qualname of ``name`` on the class or its resolved bases (DFS)."""
        seen: set[str] = set()
        stack = [class_qual]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            found = cls.methods.get(name)
            if found is not None:
                return found
            stack.extend(cls.bases)
        return None

    def attr_type_on(self, class_qual: str, attr: str) -> Optional[str]:
        """Resolved type of ``attr`` on the class or its bases."""
        seen: set[str] = set()
        stack = [class_qual]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            found = cls.attr_types.get(attr)
            if found is not None:
                return found
            stack.extend(cls.bases)
        return None

    # -- export ------------------------------------------------------------
    def to_json_dict(self) -> dict[str, object]:
        """A deterministic JSON-serializable dump of the graph."""
        functions = sorted(self.functions)
        classes = {
            qual: {
                "bases": sorted(cls.bases),
                "methods": dict(sorted(cls.methods.items())),
                "attr_types": dict(sorted(cls.attr_types.items())),
                "fields": sorted(cls.fields),
            }
            for qual, cls in sorted(self.classes.items())
        }
        edges = [
            {
                "from": info.qualname,
                "to": edge.target,
                "line": getattr(edge.node, "lineno", 0),
            }
            for _, info in sorted(self.functions.items())
            for edge in info.calls
        ]
        external = [
            {
                "from": info.qualname,
                "to": call.dotted,
                "line": call.node.lineno,
            }
            for _, info in sorted(self.functions.items())
            for call in info.external_calls
        ]
        registrations = [
            {
                "api": reg.api,
                "callback": reg.callback,
                "registrar": reg.registrar,
                "line": reg.node.lineno,
            }
            for reg in self.registrations
        ]
        return {
            "modules": sorted(self.modules),
            "functions": functions,
            "classes": classes,
            "edges": edges,
            "external_calls": external,
            "registrations": registrations,
        }


def _dotted_name(expr: ast.expr) -> Optional[str]:
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = _dotted_name(target)
        if name is not None and name.rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


class _EdgeVisitor:
    """Resolve one function's calls, registrations, and attribute writes."""

    def __init__(self, graph: ProgramGraph, info: FunctionInfo) -> None:
        self.graph = graph
        self.info = info
        self.mod = info.module
        #: local name -> resolved class qualname
        self.local_types: dict[str, str] = {}
        #: nested def name -> qualname (visible callback targets)
        self.local_defs: dict[str, str] = {}

    # -- type inference ----------------------------------------------------
    def _seed_param_types(self) -> None:
        node = self.info.node
        if isinstance(node, ast.Lambda):
            return
        for arg in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        ):
            if arg.annotation is not None:
                resolved = self.graph._resolve_class_expr(arg.annotation, self.mod)
                if resolved is not None:
                    self.local_types[arg.arg] = resolved

    def infer_type(self, expr: ast.expr) -> Optional[str]:
        """Conservative class-qualname inference for an expression."""
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and self.info.class_qual is not None:
                return self.info.class_qual
            return self.local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.infer_type(expr.value)
            if base is None:
                return None
            return self.graph.attr_type_on(base, expr.attr)
        if isinstance(expr, ast.Call):
            return self._constructor_class(expr)
        return None

    def _constructor_class(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.graph.resolve_class_name(func.id, self.mod)
            if resolved is not None and func.id not in self.local_defs:
                return resolved
            return None
        if isinstance(func, ast.Attribute):
            return self.graph._resolve_class_expr(func, self.mod)
        return None

    # -- walking -----------------------------------------------------------
    def run(self) -> None:
        self._seed_param_types()
        node = self.info.node
        body = node.body if not isinstance(node, ast.Lambda) else [node.body]
        for stmt in body:
            self._walk(stmt)

    def _walk(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: its body is its own graph node, but remember the
            # name so a later ``schedule(dt, tick)`` resolves to it.
            qual = f"{self.info.qualname}.<locals>.{node.name}"
            self.local_defs[node.name] = qual
            nested = self.graph.functions.get(qual)
            if nested is None:
                nested = FunctionInfo(
                    qualname=qual,
                    module=self.mod,
                    node=node,
                    class_qual=self.info.class_qual,
                )
                self.graph.functions[qual] = nested
            elif nested.class_qual is None:
                # Indexed without closure context; a closure over ``self``
                # still belongs to the enclosing method's class.
                nested.class_qual = self.info.class_qual
            visitor = _EdgeVisitor(self.graph, nested)
            visitor.local_types.update(self.local_types)
            visitor.local_defs.update(self.local_defs)
            visitor._seed_param_types()
            for stmt in node.body:
                visitor._walk(stmt)
            return
        if isinstance(node, ast.Lambda):
            qual = f"{self.info.qualname}.<locals>.<lambda:{node.lineno}>"
            if qual not in self.graph.functions:
                nested = FunctionInfo(
                    qualname=qual,
                    module=self.mod,
                    node=node,
                    class_qual=self.info.class_qual,
                )
                self.graph.functions[qual] = nested
                visitor = _EdgeVisitor(self.graph, nested)
                visitor.local_types.update(self.local_types)
                visitor.local_defs.update(self.local_defs)
                visitor._walk(node.body)
            return
        if isinstance(node, ast.ClassDef):
            return  # classes nested in functions are out of scope
        if isinstance(node, ast.Assign):
            self._note_assign(node)
        elif isinstance(node, ast.AnnAssign):
            self._note_annassign(node)
        elif isinstance(node, ast.AugAssign):
            self._note_attr_write(node.target)
        elif isinstance(node, ast.Call):
            self._resolve_call(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    def _note_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_attr_write(target)
            if isinstance(target, ast.Tuple):
                for element in target.elts:
                    self._note_attr_write(element)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            inferred = self.infer_type(node.value)
            if inferred is not None:
                self.local_types[node.targets[0].id] = inferred

    def _note_annassign(self, node: ast.AnnAssign) -> None:
        self._note_attr_write(node.target)
        if isinstance(node.target, ast.Name):
            resolved = self.graph._resolve_class_expr(node.annotation, self.mod)
            if resolved is not None:
                self.local_types[node.target.id] = resolved

    def _note_attr_write(self, target: ast.expr) -> None:
        if isinstance(target, ast.Attribute):
            self.info.attr_writes.append(
                AttrWrite(
                    attr=target.attr,
                    receiver_class=self.infer_type(target.value),
                    node=target,
                )
            )

    # -- call resolution ---------------------------------------------------
    def _resolve_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            self._resolve_name_call(call, func.id)
        elif isinstance(func, ast.Attribute):
            self._resolve_attr_call(call, func)

    def _resolve_name_call(self, call: ast.Call, name: str) -> None:
        if name in self.local_defs:
            self._add_edge(self.local_defs[name], call)
            return
        top = self.mod.top_defs.get(name)
        if top is not None:
            if top in self.classes_of_graph():
                self._on_constructor(call, top)
            else:
                self._add_edge(top, call)
            return
        origin = self.mod.import_names.get(name)
        if origin is not None:
            target = self._project_symbol(origin)
            if target is not None:
                if target in self.graph.classes:
                    self._on_constructor(call, target)
                elif target in self.graph.functions:
                    self._add_edge(target, call)
                return
            # Re-exported project class (``from repro.netsim import Timer``).
            resolved = self.graph.resolve_class_name(name, self.mod)
            if resolved is not None:
                self._on_constructor(call, resolved)
                return
            self.info.external_calls.append(ExternalCall(origin, call))
            return
        if name in ("hash", "id"):
            self.info.external_calls.append(
                ExternalCall(f"builtins.{name}", call)
            )

    def classes_of_graph(self) -> dict[str, ClassInfo]:
        return self.graph.classes

    def _resolve_attr_call(self, call: ast.Call, func: ast.Attribute) -> None:
        dotted = _dotted_name(func)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            target_mod = self.mod.import_modules.get(head)
            if (
                target_mod is not None
                and rest
                and head not in self.local_types
                and head != "self"
            ):
                full = f"{target_mod}.{rest}"
                target = self._project_symbol(full)
                if target is not None:
                    if target in self.graph.classes:
                        self._on_constructor(call, target)
                    elif target in self.graph.functions:
                        self._add_edge(target, call)
                else:
                    self.info.external_calls.append(ExternalCall(full, call))
                return
        receiver_type = self.infer_type(func.value)
        attr = func.attr
        if receiver_type is not None:
            target = self.graph.method_on(receiver_type, attr)
            if target is not None:
                self._add_edge(target, call)
                if attr in REGISTRATION_APIS:
                    self._on_registration(call, attr)
                return
            return  # typed receiver without the method: no edge, no guess
        if attr in REGISTRATION_APIS and attr not in ("Timer", "PeriodicTask"):
            # Unknown receiver calling a registration-shaped method: treat
            # as a registration so callback roots are over- not
            # under-approximated.
            self._on_registration(call, attr)

    def _on_constructor(self, call: ast.Call, class_qual: str) -> None:
        init = self.graph.method_on(class_qual, "__init__")
        if init is not None:
            self._add_edge(init, call)
        cls = self.graph.classes.get(class_qual)
        if cls is not None:
            if cls.name in ("Timer", "PeriodicTask"):
                self._on_registration(call, cls.name, constructor=True)
            for kw in call.keywords:
                if kw.arg is not None:
                    self.info.attr_writes.append(
                        AttrWrite(attr=kw.arg, receiver_class=class_qual, node=call)
                    )

    def _project_symbol(self, dotted: str) -> Optional[str]:
        """Map a fully dotted name onto a project class/function, if any."""
        if dotted in self.graph.classes or dotted in self.graph.functions:
            return dotted
        head, _, tail = dotted.rpartition(".")
        mod = self.graph.modules.get(head)
        if mod is not None:
            qual = f"{mod.name}.{tail}"
            if qual in self.graph.classes or qual in self.graph.functions:
                return qual
            # The name exists in a project module but is not a class/def
            # (a constant, a re-export): try the unique-name fallback.
            resolved = self.graph.resolve_class_name(tail, mod)
            if resolved is not None:
                return resolved
        return None

    def _on_registration(
        self, call: ast.Call, api: str, constructor: bool = False
    ) -> None:
        index, kwname = REGISTRATION_APIS[api]
        callback_expr: Optional[ast.expr] = None
        if len(call.args) > index:
            callback_expr = call.args[index]
        else:
            for kw in call.keywords:
                if kw.arg == kwname:
                    callback_expr = kw.value
                    break
        if callback_expr is None:
            return
        callback = self._resolve_callback(callback_expr)
        self.info.registrations.append(
            Registration(
                api=api,
                callback=callback,
                registrar=self.info.qualname,
                node=call,
            )
        )

    def _resolve_callback(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Lambda):
            return f"{self.info.qualname}.<locals>.<lambda:{expr.lineno}>"
        if isinstance(expr, ast.Name):
            if expr.id in self.local_defs:
                return self.local_defs[expr.id]
            top = self.mod.top_defs.get(expr.id)
            if top is not None and top in self.graph.functions:
                return top
            origin = self.mod.import_names.get(expr.id)
            if origin is not None:
                return self._project_symbol(origin)
            return None
        if isinstance(expr, ast.Attribute):
            receiver_type = self.infer_type(expr.value)
            if receiver_type is not None:
                return self.graph.method_on(receiver_type, expr.attr)
            dotted = _dotted_name(expr)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                target_mod = self.mod.import_modules.get(head)
                if target_mod is not None and rest:
                    return self._project_symbol(f"{target_mod}.{rest}")
            return None
        return None

    def _add_edge(self, target: str, node: ast.AST) -> None:
        self.info.calls.append(CallEdge(target=target, node=node))


def build_program(contexts: list[ModuleContext]) -> ProgramGraph:
    """Build the whole-program graph over already-parsed module contexts."""
    return ProgramGraph(contexts)

"""Analysis engine: file walking, module context, waivers, and caching.

The engine parses each Python file once into a :class:`ModuleContext`
(AST + waiver map + ownership facts) and hands it to every applicable
rule. Two rule shapes exist:

* **per-module** rules — plain callables ``rule(ctx) -> list[Finding]``
  registered in :mod:`repro.analysis.rules`;
* **interprocedural** rules — callables
  ``rule(program: ProgramGraph) -> list[Finding]`` (marked with
  ``rule.interprocedural = True``) registered in
  :mod:`repro.analysis.iprules`, which run once over the whole-program
  call graph built from every parsed module.

An optional **content-hash incremental cache** (``cache_path``) keys
per-module findings on each file's SHA-256 and the interprocedural
findings on the digest of *all* file hashes, so an unchanged tree
re-analyzes nothing and a one-file edit re-runs only that module's
rules plus the (cheap, single) graph pass.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence, Union

if TYPE_CHECKING:  # circular at runtime: graph builds on ModuleContext
    from .graph import ProgramGraph

#: Bump to invalidate cached findings when engine/rule semantics change.
ENGINE_VERSION = "2"

#: Inline waiver: ``# repro: allow(CODE[, CODE...]) optional reason``.
#: Applies to the line it sits on and the line directly below (so a
#: standalone comment can waive the following statement).
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(\s*([A-Z0-9_,\s]+?)\s*\)")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    __slots__ = (
        "path",
        "rel_path",
        "source",
        "tree",
        "is_test",
        "suppressions",
        "owned_privates",
    )

    def __init__(self, path: Path, rel_path: str, source: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.tree = ast.parse(source, filename=rel_path)
        parts = rel_path.replace("\\", "/").split("/")
        self.is_test = "tests" in parts or parts[-1].startswith("test_")
        self.suppressions = _collect_suppressions(source)
        self.owned_privates = _collect_owned_privates(self.tree)

    def allowed(self, code: str, line: int) -> bool:
        """Is ``code`` waived at ``line`` (same line or the line above)?"""
        return code in self.suppressions.get(line, ()) or code in self.suppressions.get(
            line - 1, ()
        )

    def finding(self, node: ast.AST, code: str, message: str) -> Optional[Finding]:
        line = getattr(node, "lineno", 1)
        if self.allowed(code, line):
            return None
        return Finding(
            path=self.rel_path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


def _collect_suppressions(source: str) -> dict[int, frozenset[str]]:
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            codes = frozenset(
                code.strip() for code in match.group(1).split(",") if code.strip()
            )
            out[lineno] = codes
    return out


def _slot_names(node: ast.AST) -> Iterable[str]:
    """String elements of a ``__slots__`` value (tuple/list/str)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        yield node.value
    elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                yield element.value


def _collect_owned_privates(tree: ast.Module) -> frozenset[str]:
    """Private names this module *owns* and may therefore touch freely.

    A module owns ``_name`` if it assigns ``self._name`` / ``cls._name``
    anywhere, declares it in a ``__slots__`` tuple, binds it in a class
    body (class attribute, dataclass field, or method definition), or
    assigns it at module level.
    """
    owned: set[str] = set()

    def note_target(target: ast.expr) -> None:
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id in ("self", "cls") and target.attr.startswith("_"):
                owned.add(target.attr)

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                note_target(target)
                if isinstance(target, ast.Tuple):
                    for element in target.elts:
                        note_target(element)
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    if isinstance(node, ast.Assign) and node.value is not None:
                        owned.update(_slot_names(node.value))
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if stmt.name.startswith("_"):
                        owned.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            if target.id == "__slots__":
                                owned.update(_slot_names(stmt.value))
                            elif target.id.startswith("_"):
                                owned.add(target.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if stmt.target.id.startswith("_"):
                        owned.add(stmt.target.id)
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.startswith("_"):
                    owned.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.target.id.startswith("_"):
                owned.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("_"):
                owned.add(node.name)
    return frozenset(owned)


#: Per-module rule: ``rule(ctx) -> findings``. Interprocedural rules take
#: a ProgramGraph instead and are marked ``rule.interprocedural = True``.
Rule = Callable[..., list[Finding]]


def is_interprocedural(rule: Rule) -> bool:
    return bool(getattr(rule, "interprocedural", False))


def rule_code(rule: Rule) -> str:
    """Rule code from the callable name (``rule_det001`` -> ``DET001``)."""
    return rule.__name__.removeprefix("rule_").upper()


def _parse_failure(rel: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=rel,
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        code="PARSE",
        message=f"syntax error: {exc.msg}",
    )


def _load_context(
    path: Path, rel: str, source: Optional[str] = None
) -> tuple[Optional[ModuleContext], list[Finding]]:
    if source is None:
        source = path.read_text(encoding="utf-8")
    try:
        return ModuleContext(path, rel, source), []
    except SyntaxError as exc:
        return None, [_parse_failure(rel, exc)]


def _run_interprocedural(
    contexts: Sequence[ModuleContext], rules: Sequence[Rule]
) -> list[Finding]:
    if not rules or not contexts:
        return []
    from .graph import build_program

    program = build_program(list(contexts))
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule(program))
    return findings


def analyze_file(
    path: Path,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> list[Finding]:
    """Run ``rules`` (default: all) over one file.

    Interprocedural rules see a one-module program — enough for
    self-contained fixtures; use :func:`analyze_paths` for real trees.
    """
    from .rules import ALL_RULES

    if rules is None:
        rules = ALL_RULES
    rel = str(path.relative_to(root)) if root is not None else str(path)
    ctx, findings = _load_context(path, rel)
    if ctx is None:
        return findings
    for rule in rules:
        if not is_interprocedural(rule):
            findings.extend(rule(ctx))
    findings.extend(
        _run_interprocedural(
            [ctx], [rule for rule in rules if is_interprocedural(rule)]
        )
    )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


# -- incremental cache -----------------------------------------------------

_CACHE_SCHEMA = 1


def _finding_to_row(finding: Finding) -> list[object]:
    return [finding.path, finding.line, finding.col, finding.code, finding.message]


def _finding_from_row(row: Sequence[object]) -> Finding:
    return Finding(
        path=str(row[0]),
        line=int(str(row[1])),
        col=int(str(row[2])),
        code=str(row[3]),
        message=str(row[4]),
    )


class AnalysisCache:
    """Content-hash findings cache: per-file entries + one program entry."""

    def __init__(self, path: Path, rules_key: str) -> None:
        self.path = path
        self.rules_key = rules_key
        self.files: dict[str, dict[str, object]] = {}
        self.program: dict[str, object] = {}
        self.dirty = False
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            not isinstance(raw, dict)
            or raw.get("schema") != _CACHE_SCHEMA
            or raw.get("rules_key") != rules_key
        ):
            return  # different schema or rule set: start cold
        files = raw.get("files")
        if isinstance(files, dict):
            self.files = files
        program = raw.get("program")
        if isinstance(program, dict):
            self.program = program

    def module_findings(self, rel: str, digest: str) -> Optional[list[Finding]]:
        entry = self.files.get(rel)
        if not isinstance(entry, dict) or entry.get("hash") != digest:
            return None
        rows = entry.get("findings")
        if not isinstance(rows, list):
            return None
        return [_finding_from_row(row) for row in rows]

    def store_module(
        self, rel: str, digest: str, findings: Sequence[Finding]
    ) -> None:
        self.files[rel] = {
            "hash": digest,
            "findings": [_finding_to_row(f) for f in findings],
        }
        self.dirty = True

    def program_findings(self, key: str) -> Optional[list[Finding]]:
        if self.program.get("key") != key:
            return None
        rows = self.program.get("findings")
        if not isinstance(rows, list):
            return None
        return [_finding_from_row(row) for row in rows]

    def store_program(self, key: str, findings: Sequence[Finding]) -> None:
        self.program = {
            "key": key,
            "findings": [_finding_to_row(f) for f in findings],
        }
        self.dirty = True

    def save(self, known_files: Iterable[str]) -> None:
        keep = set(known_files)
        self.files = {rel: e for rel, e in self.files.items() if rel in keep}
        payload = {
            "schema": _CACHE_SCHEMA,
            "rules_key": self.rules_key,
            "files": self.files,
            "program": self.program,
        }
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # a read-only checkout must not fail the analysis


def analyze_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    cache_path: Optional[Union[str, Path]] = None,
) -> list[Finding]:
    """Run the rule set over every ``.py`` file under ``paths``.

    Per-module rules run file-by-file (cache-hit files are not even
    parsed unless the interprocedural pass needs their AST); the
    interprocedural rules run once over the whole-program graph and are
    cached against the digest of every file hash.
    """
    from .rules import ALL_RULES

    if rules is None:
        rules = ALL_RULES
    module_rules = [rule for rule in rules if not is_interprocedural(rule)]
    ip_rules = [rule for rule in rules if is_interprocedural(rule)]
    rules_key = ",".join(sorted(rule_code(r) for r in rules)) + "|" + ENGINE_VERSION

    files = iter_python_files(paths)
    rels: list[str] = []
    sources: dict[str, str] = {}
    digests: dict[str, str] = {}
    file_paths: dict[str, Path] = {}
    for file_path in files:
        rel = str(file_path.relative_to(root)) if root is not None else str(file_path)
        data = file_path.read_bytes()
        rels.append(rel)
        file_paths[rel] = file_path
        sources[rel] = data.decode("utf-8")
        digests[rel] = hashlib.sha256(data).hexdigest()

    cache: Optional[AnalysisCache] = None
    if cache_path is not None:
        cache = AnalysisCache(Path(cache_path), rules_key)

    program_key = hashlib.sha256(
        ("\n".join(f"{rel}:{digests[rel]}" for rel in sorted(rels)) + rules_key).encode()
    ).hexdigest()
    cached_program = cache.program_findings(program_key) if cache else None

    findings: list[Finding] = []
    contexts: dict[str, Optional[ModuleContext]] = {}

    def context_for(rel: str) -> Optional[ModuleContext]:
        if rel not in contexts:
            ctx, parse_findings = _load_context(
                file_paths[rel], rel, sources[rel]
            )
            contexts[rel] = ctx
            if ctx is None and cache is not None:
                # Make sure the PARSE finding is what the cache holds.
                cache.store_module(rel, digests[rel], parse_findings)
        return contexts[rel]

    for rel in rels:
        cached = cache.module_findings(rel, digests[rel]) if cache else None
        if cached is not None:
            findings.extend(cached)
            continue
        ctx, parse_findings = _load_context(file_paths[rel], rel, sources[rel])
        contexts[rel] = ctx
        if ctx is None:
            findings.extend(parse_findings)
            if cache is not None:
                cache.store_module(rel, digests[rel], parse_findings)
            continue
        module_findings: list[Finding] = []
        for rule in module_rules:
            module_findings.extend(rule(ctx))
        findings.extend(module_findings)
        if cache is not None:
            cache.store_module(rel, digests[rel], module_findings)

    if ip_rules:
        if cached_program is not None:
            findings.extend(cached_program)
        else:
            parsed = [
                ctx
                for ctx in (context_for(rel) for rel in rels)
                if ctx is not None
            ]
            ip_findings = _run_interprocedural(parsed, ip_rules)
            findings.extend(ip_findings)
            if cache is not None:
                cache.store_program(program_key, ip_findings)

    if cache is not None and cache.dirty:
        cache.save(rels)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def build_program_for_paths(
    paths: Sequence[Path], root: Optional[Path] = None
) -> "ProgramGraph":
    """Parse every file under ``paths`` and build the program graph."""
    from .graph import build_program

    contexts: list[ModuleContext] = []
    for file_path in iter_python_files(paths):
        rel = str(file_path.relative_to(root)) if root is not None else str(file_path)
        ctx, _ = _load_context(file_path, rel)
        if ctx is not None:
            contexts.append(ctx)
    return build_program(contexts)

"""Analysis engine: file walking, module context, and inline waivers.

The engine parses each Python file once into a :class:`ModuleContext`
(AST + waiver map + ownership facts) and hands it to every applicable
rule. Rules are plain callables ``rule(ctx) -> list[Finding]`` registered
in :mod:`repro.analysis.rules`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

#: Inline waiver: ``# repro: allow(CODE[, CODE...]) optional reason``.
#: Applies to the line it sits on and the line directly below (so a
#: standalone comment can waive the following statement).
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(\s*([A-Z0-9_,\s]+?)\s*\)")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    __slots__ = (
        "path",
        "rel_path",
        "source",
        "tree",
        "is_test",
        "suppressions",
        "owned_privates",
    )

    def __init__(self, path: Path, rel_path: str, source: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.tree = ast.parse(source, filename=rel_path)
        parts = rel_path.replace("\\", "/").split("/")
        self.is_test = "tests" in parts or parts[-1].startswith("test_")
        self.suppressions = _collect_suppressions(source)
        self.owned_privates = _collect_owned_privates(self.tree)

    def allowed(self, code: str, line: int) -> bool:
        """Is ``code`` waived at ``line`` (same line or the line above)?"""
        return code in self.suppressions.get(line, ()) or code in self.suppressions.get(
            line - 1, ()
        )

    def finding(self, node: ast.AST, code: str, message: str) -> Optional[Finding]:
        line = getattr(node, "lineno", 1)
        if self.allowed(code, line):
            return None
        return Finding(
            path=self.rel_path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


def _collect_suppressions(source: str) -> dict[int, frozenset[str]]:
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            codes = frozenset(
                code.strip() for code in match.group(1).split(",") if code.strip()
            )
            out[lineno] = codes
    return out


def _slot_names(node: ast.AST) -> Iterable[str]:
    """String elements of a ``__slots__`` value (tuple/list/str)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        yield node.value
    elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                yield element.value


def _collect_owned_privates(tree: ast.Module) -> frozenset[str]:
    """Private names this module *owns* and may therefore touch freely.

    A module owns ``_name`` if it assigns ``self._name`` / ``cls._name``
    anywhere, declares it in a ``__slots__`` tuple, binds it in a class
    body (class attribute, dataclass field, or method definition), or
    assigns it at module level.
    """
    owned: set[str] = set()

    def note_target(target: ast.expr) -> None:
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id in ("self", "cls") and target.attr.startswith("_"):
                owned.add(target.attr)

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                note_target(target)
                if isinstance(target, ast.Tuple):
                    for element in target.elts:
                        note_target(element)
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    if isinstance(node, ast.Assign) and node.value is not None:
                        owned.update(_slot_names(node.value))
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if stmt.name.startswith("_"):
                        owned.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            if target.id == "__slots__":
                                owned.update(_slot_names(stmt.value))
                            elif target.id.startswith("_"):
                                owned.add(target.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if stmt.target.id.startswith("_"):
                        owned.add(stmt.target.id)
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.startswith("_"):
                    owned.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.target.id.startswith("_"):
                owned.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("_"):
                owned.add(node.name)
    return frozenset(owned)


Rule = Callable[[ModuleContext], list[Finding]]


def analyze_file(
    path: Path,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> list[Finding]:
    """Run ``rules`` (default: all) over one file."""
    from .rules import ALL_RULES

    rel = str(path.relative_to(root)) if root is not None else str(path)
    source = path.read_text(encoding="utf-8")
    try:
        ctx = ModuleContext(path, rel, source)
    except SyntaxError as exc:
        return [
            Finding(
                path=rel,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="PARSE",
                message=f"syntax error: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule in rules if rules is not None else ALL_RULES:
        findings.extend(rule(ctx))
    return findings


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def analyze_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> list[Finding]:
    """Run the rule set over every ``.py`` file under ``paths``."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(analyze_file(file_path, root=root, rules=rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings

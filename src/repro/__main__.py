"""`python -m repro` — a guided tour of the InterEdge.

Builds a small federation, runs one representative interaction per major
capability, and prints what happened. A smoke test of the whole stack in
a few seconds; the `examples/` scripts go deeper on each scenario.
"""

from __future__ import annotations

import sys

from . import InterEdge, WellKnownService
from .core.monitoring import FederationMonitor
from .services import standard_registry
from .services.multipoint import join_group, publish, register_sender


def main(argv: list[str]) -> int:
    print("InterEdge demo — building a two-IESP federation")
    net = InterEdge(registry=standard_registry())
    net.create_edomain("west-iesp")
    net.create_edomain("east-iesp")
    sn_w = net.add_sn("west-iesp", name="pop-west")
    sn_e = net.add_sn("east-iesp", name="pop-east")
    pipes = net.peer_all()
    deployed = net.deploy_required_services()
    print(f"  {pipes} peering pipes, {deployed} service deployments")

    # Point-to-point delivery.
    alice = net.add_host(sn_w, name="alice")
    bob = net.add_host(sn_e, name="bob", register_name="bob.example")
    res = net.names.resolve("bob.example")
    conn = alice.connect(
        WellKnownService.IP_DELIVERY, dest_addr=res.address, dest_sn=res.primary_sn
    )
    for i in range(3):
        alice.send(conn, f"msg-{i}".encode())
    net.run(1.0)
    print(f"  delivery: bob received {len(bob.delivered)} packets across edomains")

    # Pub/sub via the membership plane.
    net.lookup.register_group("pubsub:demo", alice.keypair)
    net.lookup.post_open_group("pubsub:demo", alice.keypair)
    join_group(bob, WellKnownService.PUBSUB, "demo")
    register_sender(alice, WellKnownService.PUBSUB, "demo")
    net.run(0.5)
    publish(alice, WellKnownService.PUBSUB, "demo", b"hello subscribers")
    net.run(0.5)
    pubsub_got = sum(1 for _, p in bob.delivered if p.data == b"hello subscribers")
    print(f"  pub/sub: {pubsub_got} topic message delivered via membership plane")

    # Fleet health.
    report = FederationMonitor(net).collect()
    print(
        f"  monitor: {len(report.snapshots)} SNs, "
        f"{report.total_packets} packets, "
        f"fast-path {report.overall_fast_path_fraction:.0%}, "
        f"drops {report.total_drops}"
    )
    print("done — see examples/ and EXPERIMENTS.md for the full tour")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

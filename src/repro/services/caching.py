"""Caching/CDN bundle (§3.2's canonical bundle example).

The bundle composes IP-like delivery with an edge cache — hosts invoke the
single ``CACHING_BUNDLE`` service, with optional settings (cache on/off,
transcode profile) signalled in the BUNDLE TLV. Integration of the two is
the bundle developer's job, not the customer's (§3.2).

Wire protocol inside the payload (a deliberately tiny HTTP stand-in):

* request:  ``GET <url>``
* response: ``DATA <url>\\n<body bytes>``

Behaviour at the client's first-hop SN (where the application provider's
IESP caches, per §5's coordination discussion):

* request + cache hit → respond directly to the client;
* request + miss → forward toward the origin's SN (plain delivery);
* response passing back → store in the cache (respecting TTL), deliver.

This service is content-aware, so it never installs decision-cache entries
for request traffic; responses ride the fast path only when cache storage
is disabled for the connection.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

from ..core.ilp import Flags, ILPHeader, TLV
from ..core.packet import Payload, make_payload
from ..core.service_module import ServiceModule, Verdict, WellKnownService
from .common import deliver_toward

OPT_NO_CACHE = b"no-cache"
OPT_TRANSCODE_PREFIX = b"transcode="


class CacheStore:
    """A TTL + LRU object cache, the in-module data plane of the bundle."""

    def __init__(self, capacity: int = 1024, default_ttl: float = 300.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.default_ttl = default_ttl
        self._entries: "OrderedDict[str, tuple[bytes, float]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, url: str, now: float) -> Optional[bytes]:
        entry = self._entries.get(url)
        if entry is None:
            self.misses += 1
            return None
        body, expires = entry
        if now >= expires:
            del self._entries[url]
            self.misses += 1
            return None
        self._entries.move_to_end(url)
        self.hits += 1
        return body

    def put(self, url: str, body: bytes, now: float, ttl: Optional[float] = None) -> None:
        while len(self._entries) >= self.capacity and url not in self._entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[url] = (body, now + (ttl or self.default_ttl))
        self._entries.move_to_end(url)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def parse_request(data: bytes) -> Optional[str]:
    if data.startswith(b"GET "):
        return data[4:].decode(errors="replace").strip()
    return None


def parse_response(data: bytes) -> Optional[tuple[str, bytes]]:
    if not data.startswith(b"DATA "):
        return None
    head, _, body = data[5:].partition(b"\n")
    return head.decode(errors="replace").strip(), body


def make_response(url: str, body: bytes) -> bytes:
    return b"DATA " + url.encode() + b"\n" + body


class CachingBundleService(ServiceModule):
    """The standardized caching bundle."""

    SERVICE_ID = WellKnownService.CACHING_BUNDLE
    NAME = "caching-bundle"
    VERSION = "1.0"

    def __init__(self, capacity: int = 1024, default_ttl: float = 300.0) -> None:
        super().__init__()
        self.cache = CacheStore(capacity=capacity, default_ttl=default_ttl)
        self.requests = 0
        self.origin_fetches = 0
        #: connection id -> BUNDLE options recorded at request time, so the
        #: response leg (a header built by the origin host) honors them.
        self._conn_opts: dict[int, bytes] = {}

    # -- option handling ----------------------------------------------------
    def _options(self, header: ILPHeader) -> list[bytes]:
        raw = header.tlvs.get(TLV.BUNDLE)
        if raw is None:
            raw = self._conn_opts.get(header.connection_id, b"")
        return [opt for opt in raw.split(b";") if opt]

    def _cache_enabled(self, header: ILPHeader) -> bool:
        return OPT_NO_CACHE not in self._options(header)

    def _transcode_profile(self, header: ILPHeader) -> Optional[str]:
        for opt in self._options(header):
            if opt.startswith(OPT_TRANSCODE_PREFIX):
                return opt[len(OPT_TRANSCODE_PREFIX):].decode()
        return None

    # -- delivery plumbing (the bundled IP-like half) -----------------------
    def _deliver_toward(self, header: ILPHeader, payload: Payload) -> Verdict:
        assert self.ctx is not None
        return deliver_toward(self.ctx, header, payload)

    def _respond(self, header: ILPHeader, url: str, body: bytes) -> Verdict:
        """Send a cached response back toward the requesting host."""
        assert self.ctx is not None
        requester = header.get_str(TLV.SRC_HOST)
        if requester is None:
            return Verdict.drop()
        data = body
        profile = self._transcode_profile(header)
        if profile is not None and self.ctx.libs.has("media"):
            data = self.ctx.libs.get("media").transcode(body, profile)
        response = ILPHeader(
            service_id=self.SERVICE_ID,
            connection_id=header.connection_id,
        )
        response.set_str(TLV.DEST_ADDR, requester)
        payload = make_payload(make_response(url, data))
        local = self.ctx.peer_for_host(requester)
        if local is not None:
            return Verdict.forward(local, response, payload)
        # Requester is remote: route the response like any delivery.
        return self._deliver_toward(response, payload)

    # -- datapath ----------------------------------------------------------
    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        data = packet.payload.data
        url = parse_request(data)
        if url is not None:
            self.requests += 1
            if TLV.BUNDLE in header.tlvs:
                self._conn_opts[header.connection_id] = header.tlvs[TLV.BUNDLE]
            if self._cache_enabled(header):
                body = self.cache.get(url, self.ctx.now())
                if body is not None:
                    return self._respond(header, url, body)
            self.origin_fetches += 1
            return self._deliver_toward(header, packet.payload)
        parsed = parse_response(data)
        if parsed is not None:
            url, body = parsed
            # Transparent path caching: every caching SN the response
            # traverses stores it, so future requests hit at whichever
            # caching SN they reach first — the client-nearest one, which
            # may be the app provider's SN when the client sits behind an
            # enterprise pass-through gateway (§5 coordination).
            dest = header.get_str(TLV.DEST_ADDR)
            if self._cache_enabled(header):
                self.cache.put(url, body, self.ctx.now())
            profile = self._transcode_profile(header)
            if (
                profile is not None
                and dest is not None
                and self.ctx.peer_for_host(dest) is not None
                and self.ctx.libs.has("media")
            ):
                media = self.ctx.libs.get("media")
                payload = make_payload(
                    make_response(url, media.transcode(body, profile))
                )
                return self._deliver_toward(header, payload)
            return self._deliver_toward(header, packet.payload)
        # Unknown app bytes: plain delivery (the bundle degrades gracefully).
        return self._deliver_toward(header, packet.payload)

    def checkpoint(self) -> dict[str, Any]:
        return {
            "entries": list(self.cache._entries.items()),
            "requests": self.requests,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.cache._entries = OrderedDict(state.get("entries", []))
        self.requests = state.get("requests", 0)

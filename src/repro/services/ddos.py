"""DDoS protection service (§1.2, §6).

Protects a subscribed destination at the *first-hop SNs of the senders* —
the InterEdge advantage being that scrubbing happens at the edge where
traffic enters, long before it concentrates at the victim.

Mechanisms (both standard industry practice):

* per-source token-bucket rate limiting toward protected destinations;
* under attack (an operator signal or automatic trigger), unknown sources
  must present a hashcash-style **admission puzzle** solution in a TLV;
  solving costs the sender CPU, making large-scale floods expensive.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.ilp import Flags, ILPHeader, TLV
from ..core.service_module import Emit, ServiceModule, Verdict, WellKnownService
from ..core.packet import Payload
from ..sched import TokenBucket
from .common import deliver_toward

TLV_PUZZLE_SOLUTION = TLV.SERVICE_PRIVATE + 2
OP_PROTECT = b"protect"
OP_UNPROTECT = b"unprotect"
OP_ATTACK_MODE = b"attack-mode"
OP_CALM_MODE = b"calm-mode"


@dataclass
class ProtectionPolicy:
    rate_bps: float = 1_000_000.0  # per-source allowance
    burst_bytes: int = 15_000
    puzzle_difficulty: int = 12  # leading zero bits required under attack
    #: automatic attack-mode trigger: this many rate-limit drops toward one
    #: destination within ``trigger_window`` seconds flips it to attack mode
    auto_trigger_drops: int = 100
    trigger_window: float = 5.0


def make_puzzle_challenge(dest: str, source: str, epoch: int) -> bytes:
    """The deterministic challenge a sender must solve for (dest, epoch)."""
    return hashlib.sha256(f"ddos|{dest}|{source}|{epoch}".encode()).digest()


def solve_puzzle(challenge: bytes, difficulty: int, max_tries: int = 1 << 22) -> bytes:
    """Client-side: find a nonce giving ``difficulty`` leading zero bits."""
    for i in range(max_tries):
        nonce = i.to_bytes(8, "big")
        if _leading_zero_bits(hashlib.sha256(challenge + nonce).digest()) >= difficulty:
            return nonce
    raise RuntimeError("puzzle too hard for max_tries")


def _leading_zero_bits(digest: bytes) -> int:
    bits = 0
    for byte in digest:
        if byte == 0:
            bits += 8
            continue
        for shift in range(7, -1, -1):
            if byte >> shift:
                return bits + (7 - shift)
        break
    return bits


class DDoSProtectionService(ServiceModule):
    """Edge scrubbing for subscribed destinations."""

    SERVICE_ID = WellKnownService.DDOS_PROTECT
    NAME = "ddos-protect"
    VERSION = "1.0"

    def __init__(self, policy: Optional[ProtectionPolicy] = None) -> None:
        super().__init__()
        self.policy = policy or ProtectionPolicy()
        self.protected: set[str] = set()
        self.attack_mode: set[str] = set()
        self.puzzle_epoch = 0
        self._buckets: dict[tuple[str, str], TokenBucket] = {}
        self._admitted_sources: dict[str, set[str]] = {}
        #: dest -> (window start, drops in window) for auto attack detection
        self._drop_windows: dict[str, tuple[float, int]] = {}
        self.dropped_rate = 0
        self.dropped_puzzle = 0
        self.auto_triggers = 0

    # -- control ----------------------------------------------------------
    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        op = header.tlvs.get(TLV.SERVICE_OPTS, b"")
        dest = header.get_str(TLV.DEST_ADDR) or header.get_str(TLV.SRC_HOST)
        if dest is None:
            return Verdict.drop()
        if op == OP_PROTECT:
            self.protected.add(dest)
        elif op == OP_UNPROTECT:
            self.protected.discard(dest)
            self.attack_mode.discard(dest)
        elif op == OP_ATTACK_MODE:
            self.attack_mode.add(dest)
            self.puzzle_epoch += 1
            self._admitted_sources.pop(dest, None)
        elif op == OP_CALM_MODE:
            self.attack_mode.discard(dest)
        else:
            return Verdict.drop()
        return Verdict(dropped=False)

    # -- datapath ----------------------------------------------------------
    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        dest = header.get_str(TLV.DEST_ADDR)
        source = header.get_str(TLV.SRC_HOST)
        if dest is None:
            return Verdict.drop()
        if dest not in self.protected or source is None:
            return deliver_toward(self.ctx, header, packet.payload)

        # Attack mode: unknown sources must have solved the puzzle.
        if dest in self.attack_mode:
            admitted = self._admitted_sources.setdefault(dest, set())
            if source not in admitted:
                solution = header.tlvs.get(TLV_PUZZLE_SOLUTION)
                if solution is None or not self._check_puzzle(dest, source, solution):
                    self.dropped_puzzle += 1
                    return Verdict.drop()
                admitted.add(source)

        # Always-on per-source rate limit.
        bucket = self._buckets.get((dest, source))
        if bucket is None:
            bucket = TokenBucket(self.policy.rate_bps, self.policy.burst_bytes)
            self._buckets[(dest, source)] = bucket
        if not bucket.try_consume(packet.wire_size, self.ctx.now()):
            self.dropped_rate += 1
            self._note_drop(dest)
            return Verdict.drop()
        return deliver_toward(self.ctx, header, packet.payload)

    def _note_drop(self, dest: str) -> None:
        """Auto-escalation: sustained rate-limit drops flip attack mode."""
        now = self.ctx.now() if self.ctx else 0.0
        start, count = self._drop_windows.get(dest, (now, 0))
        if now - start > self.policy.trigger_window:
            start, count = now, 0
        count += 1
        self._drop_windows[dest] = (start, count)
        if count >= self.policy.auto_trigger_drops and dest not in self.attack_mode:
            self.attack_mode.add(dest)
            self.puzzle_epoch += 1
            self._admitted_sources.pop(dest, None)
            self.auto_triggers += 1

    def _check_puzzle(self, dest: str, source: str, solution: bytes) -> bool:
        challenge = make_puzzle_challenge(dest, source, self.puzzle_epoch)
        return (
            _leading_zero_bits(hashlib.sha256(challenge + solution).digest())
            >= self.policy.puzzle_difficulty
        )


def subscribe_protection(host) -> bool:
    """Victim-side helper: enroll this host for DDoS protection."""
    return host.send_control(
        DDoSProtectionService.SERVICE_ID,
        {TLV.SERVICE_OPTS: OP_PROTECT, TLV.DEST_ADDR: host.address.encode()},
    )

"""IP-like point-to-point delivery — the basic InterEdge service.

§3.2's "typical communication path": source host → source's SN →
destination's SN → destination host. This module implements that path and
is the composable base of several bundles (caching, transcoding).

Unlike :class:`NullService`, it installs decision-cache entries so that
steady-state packets ride the fast path; the module only sees connection
setup, teardown (LAST flag), and any packet whose cache entry was evicted —
per Appendix B it recomputes the identical decision in that case.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.decision_cache import CacheKey, Decision
from ..core.ilp import Flags, ILPHeader, TLV
from ..core.service_module import ServiceModule, Verdict, WellKnownService
from .common import next_peer_toward


class IPDeliveryService(ServiceModule):
    """Standardized point-to-point delivery over the InterEdge."""

    SERVICE_ID = WellKnownService.IP_DELIVERY
    NAME = "ip-delivery"
    VERSION = "1.0"

    def __init__(self) -> None:
        super().__init__()
        self.connections_seen = 0
        self.recomputes = 0

    def compute_next_peer(self, header: ILPHeader) -> Optional[str]:
        """The forwarding decision, recomputable for any packet (§B.2)."""
        assert self.ctx is not None
        return next_peer_toward(self.ctx, header)

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        if header.flags & Flags.LAST:
            self.ctx.invalidate_connection(header.connection_id)
            peer = self.compute_next_peer(header)
            if peer is None:
                return Verdict.drop()
            return Verdict.forward(peer, header, packet.payload)

        if header.is_first:
            self.connections_seen += 1
        else:
            self.recomputes += 1

        peer = self.compute_next_peer(header)
        if peer is None:
            return Verdict.drop()
        key = CacheKey(
            src=packet.l3.src,
            service_id=header.service_id,
            connection_id=header.connection_id,
        )
        verdict = Verdict.forward(peer, header, packet.payload)
        verdict.installs.append((key, Decision.forward(peer)))
        return verdict

    def checkpoint(self) -> dict[str, Any]:
        return {
            "connections_seen": self.connections_seen,
            "recomputes": self.recomputes,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.connections_seen = state.get("connections_seen", 0)
        self.recomputes = state.get("recomputes", 0)

"""Cluster interconnection service (§6.3 — a paper prototype service).

Connects geographically separate compute clusters into one logical fabric:
each cluster registers its internal prefix with its first-hop SN, and the
service routes any packet addressed inside a member prefix to the SN that
registered it — a multi-site overlay built from the same delivery
primitives (the VPN-between-datacenters use case).

Fabrics are named; membership lives in the global lookup service's
service-node directory, keyed ``cluster:<fabric>:<prefix>``.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Any, Optional

from ..core.decision_cache import CacheKey, Decision
from ..core.ilp import ILPHeader, TLV
from ..core.service_module import ServiceModule, Verdict, WellKnownService
from .common import deliver_toward

from ..core.service_module import WellKnownService as _WKS
SERVICE_ID_CLUSTER = _WKS.CLUSTER_INTERCONNECT

OP_REGISTER_PREFIX = b"register-prefix"
TLV_FABRIC = TLV.TOPIC
TLV_PREFIX = TLV.SERVICE_PRIVATE + 6


class ClusterInterconnectService(ServiceModule):
    """Prefix-routed multi-cluster overlay."""

    SERVICE_ID = SERVICE_ID_CLUSTER
    NAME = "cluster-interconnect"
    VERSION = "1.0"

    def __init__(self) -> None:
        super().__init__()
        self.prefixes_registered = 0
        self.cross_cluster_packets = 0

    # -- control: cluster prefix registration -------------------------------
    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        if header.tlvs.get(TLV.SERVICE_OPTS, b"") != OP_REGISTER_PREFIX:
            return Verdict.drop()
        fabric = header.get_str(TLV_FABRIC)
        prefix = header.get_str(TLV_PREFIX)
        gateway = header.get_str(TLV.SRC_HOST)
        if fabric is None or prefix is None or gateway is None:
            return Verdict.drop()
        try:
            ipaddress.IPv4Network(prefix)
        except ValueError:
            return Verdict.drop()
        lookup = self.ctx.control_plane().lookup
        lookup.register_service_node(
            f"cluster:{fabric}:{prefix}", self.ctx.node_address
        )
        lookup.register_service_node(f"cluster:{fabric}:gateways:{prefix}", gateway)
        self.prefixes_registered += 1
        return Verdict(dropped=False)

    # -- data path -----------------------------------------------------------
    def _route_in_fabric(
        self, fabric: str, dest: str
    ) -> Optional[tuple[str, str]]:
        """(home SN, gateway host) for the member prefix containing dest."""
        assert self.ctx is not None
        lookup = self.ctx.control_plane().lookup
        addr = ipaddress.IPv4Address(dest)
        best: Optional[tuple[int, str, str]] = None
        prefix_key = f"cluster:{fabric}:"
        # Scan registered prefixes for this fabric (longest match wins).
        for key in lookup.service_keys(prefix_key):
            if ":gateways:" in key:
                continue
            prefix = key[len(prefix_key):]
            network = ipaddress.IPv4Network(prefix)
            if addr in network:
                sns = lookup.service_nodes(key)
                gateways = lookup.service_nodes(
                    f"cluster:{fabric}:gateways:{prefix}"
                )
                if sns and gateways:
                    candidate = (network.prefixlen, sorted(sns)[0], sorted(gateways)[0])
                    if best is None or candidate[0] > best[0]:
                        best = candidate
        if best is None:
            return None
        return best[1], best[2]

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        fabric = header.get_str(TLV_FABRIC)
        dest = header.get_str(TLV.DEST_ADDR)
        if fabric is None or dest is None:
            return Verdict.drop()
        # At the destination cluster's SN: hand to the cluster gateway host.
        local = self.ctx.peer_for_host(dest)
        if local is not None:
            return Verdict.forward(local, header, packet.payload)
        route = self._route_in_fabric(fabric, dest)
        if route is None:
            return Verdict.drop()
        home_sn, gateway = route
        out = header.copy()
        if home_sn == self.ctx.node_address:
            # Dest prefix is homed here: deliver to the cluster gateway.
            peer = self.ctx.peer_for_host(gateway)
            if peer is None:
                return Verdict.drop()
            self.cross_cluster_packets += 1
            return Verdict.forward(peer, out, packet.payload)
        out.set_str(TLV.DEST_SN, home_sn)
        next_hop = self.ctx.next_hop_for_sn(home_sn)
        if next_hop is None:
            return Verdict.drop()
        self.cross_cluster_packets += 1
        return Verdict.forward(next_hop, out, packet.payload)


# -- host-side helpers ------------------------------------------------------

def register_cluster_prefix(gateway_host, fabric: str, prefix: str) -> bool:
    """Cluster gateway announces its internal prefix to the fabric."""
    return gateway_host.send_control(
        SERVICE_ID_CLUSTER,
        {
            TLV.SERVICE_OPTS: OP_REGISTER_PREFIX,
            TLV_FABRIC: fabric.encode(),
            TLV_PREFIX: prefix.encode(),
        },
    )


def send_cross_cluster(host, fabric: str, dest_internal_addr: str, data: bytes):
    """Send from one cluster to an address inside another member cluster."""
    conn = host.connect(
        SERVICE_ID_CLUSTER,
        dest_addr=dest_internal_addr,
        tlvs={TLV_FABRIC: fabric.encode()},
        allow_direct=False,
    )
    host.send(conn, data)
    return conn

"""Time-ordered message delivery (§6.2 specialty services).

If SNs carry GPS receivers, the InterEdge can offer ordered (but not
atomic) message delivery: senders' first-hop SNs stamp messages with GPS
time; receivers' first-hop SNs buffer and release messages in timestamp
order after a configurable *release delay* that dominates network jitter.
The paper notes this is high-latency / low-throughput but that ordering
without atomicity still cuts coordination overheads (Spanner/CloudEx
lineage).

Ordering guarantee (asserted by property tests): if the release delay
exceeds max network delay + 2·(clock error bound), then delivery order at
every receiver matches global stamp order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.ilp import ILPHeader, TLV
from ..core.packet import Payload
from ..core.service_module import Emit, ServiceModule, Verdict, WellKnownService
from .common import deliver_toward, next_peer_toward


@dataclass
class GPSClock:
    """A GPS-disciplined clock with bounded error.

    ``read(true_time)`` returns true time plus a fixed per-node offset in
    [-error_bound, +error_bound] (GPS error is dominated by a stable bias
    at this timescale).
    """

    error_bound: float = 50e-6  # 50 µs, generous for GPS-disciplined clocks
    offset: float = 0.0

    def __post_init__(self) -> None:
        if abs(self.offset) > self.error_bound:
            raise ValueError("offset exceeds the advertised error bound")

    def read(self, true_time: float) -> float:
        return true_time + self.offset


class TimeOrderedService(ServiceModule):
    """GPS-stamped, buffer-and-release ordered delivery."""

    SERVICE_ID = WellKnownService.TIME_ORDERED
    NAME = "time-ordered"
    VERSION = "1.0"

    def __init__(
        self,
        clock: Optional[GPSClock] = None,
        release_delay: float = 0.050,
    ) -> None:
        super().__init__()
        self.clock = clock or GPSClock()
        self.release_delay = release_delay
        self._seq = itertools.count()
        #: per destination host: heap of (stamp, seq, header, payload)
        self._buffers: dict[str, list[tuple[float, int, ILPHeader, Payload]]] = {}
        self.stamped = 0
        self.released = 0

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        dest = header.get_str(TLV.DEST_ADDR)
        if dest is None:
            return Verdict.drop()
        stamp = header.get_f64(TLV.TIMESTAMP)
        if stamp is None:
            # Sender-side SN: stamp with our GPS clock and forward.
            out = header.copy()
            out.set_f64(TLV.TIMESTAMP, self.clock.read(self.ctx.now()))
            self.stamped += 1
            return deliver_toward(self.ctx, out, packet.payload)
        if self.ctx.peer_for_host(dest) is None:
            # Mid-path SN: already stamped, keep forwarding.
            return deliver_toward(self.ctx, header, packet.payload)
        # Receiver-side SN: buffer until stamp + release_delay (our clock).
        buffer = self._buffers.setdefault(dest, [])
        heapq.heappush(buffer, (stamp, next(self._seq), header, packet.payload))
        release_at_local = stamp + self.release_delay
        wait = max(0.0, release_at_local - self.clock.read(self.ctx.now()))
        self.ctx.schedule(wait, self._release_due, dest)
        return Verdict(dropped=False)

    def _release_due(self, dest: str) -> None:
        """Release every buffered message whose release time has passed."""
        assert self.ctx is not None
        buffer = self._buffers.get(dest)
        if not buffer:
            return
        now_local = self.clock.read(self.ctx.now())
        while buffer and buffer[0][0] + self.release_delay <= now_local + 1e-12:
            stamp, _seq, header, payload = heapq.heappop(buffer)
            peer = self.ctx.peer_for_host(dest)
            if peer is not None:
                self.ctx.send_ilp(peer, header, payload)
                self.released += 1

    def pending(self, dest: str) -> int:
        return len(self._buffers.get(dest, ()))

    def checkpoint(self) -> dict[str, Any]:
        return {"released": self.released, "stamped": self.stamped}

    def restore(self, state: dict[str, Any]) -> None:
        self.released = state.get("released", 0)
        self.stamped = state.get("stamped", 0)

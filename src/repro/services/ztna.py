"""Zero-trust network access (ZTNA) service.

The paper uses ZTNA twice: as a marquee edge service (§1.2) and as the
Appendix B example of a service whose connection-establishment information
is too large for a single ILP header ("ZTNA security services that check
software version information when establishing a connection").

Protocol:

* The client opens a connection whose setup spans one or more FIRST/
  MORE_HEADER packets carrying IDENTITY and SETUP_FRAG TLVs (device
  posture: OS build, patch level, agent attestation), fragmented because
  the posture report can exceed what fits beside the payload (§B.2).
* The service reassembles the posture, checks identity authorization for
  the requested resource and posture against policy, then admits the
  connection: it records it in an **internal connection table** (the
  domain-specific cache §B.2 requires) and installs a decision-cache entry.
* Mid-connection packets whose cache entry was evicted are re-admitted
  from the internal table without re-running authentication.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.decision_cache import Action, CacheKey, Decision, ForwardTarget
from ..core.ilp import Flags, ILPHeader, TLV
from ..core.service_module import ServiceModule, Verdict, WellKnownService
from .common import deliver_toward, next_peer_toward

#: Marks traffic already admitted by the enforcement SN. Only honored when
#: the packet arrived over an SN pipe (never directly from a host), so a
#: client cannot self-admit.
TLV_ADMITTED = TLV.SERVICE_PRIVATE + 4


@dataclass
class PosturePolicy:
    """What device posture is acceptable."""

    min_os_build: int = 0
    require_agent: bool = False
    max_posture_age: float = 3600.0

    def acceptable(self, posture: dict[str, Any]) -> bool:
        if int(posture.get("os_build", -1)) < self.min_os_build:
            return False
        if self.require_agent and not posture.get("agent", False):
            return False
        return True


@dataclass
class ZTNAPolicy:
    """Which identities may reach which resources, under what posture."""

    #: resource (dest host address) -> allowed identity tokens
    allowed: dict[str, set[str]] = field(default_factory=dict)
    posture: PosturePolicy = field(default_factory=PosturePolicy)

    def grant(self, resource: str, identity: str) -> None:
        self.allowed.setdefault(resource, set()).add(identity)

    def permits(self, resource: str, identity: str) -> bool:
        return identity in self.allowed.get(resource, set())


@dataclass
class _PendingSetup:
    fragments: dict[int, bytes] = field(default_factory=dict)
    identity: Optional[str] = None
    dest: Optional[str] = None


@dataclass
class _AdmittedConnection:
    identity: str
    dest: str
    peer: str
    admitted_at: float


class ZTNAService(ServiceModule):
    """Identity- and posture-gated access to protected resources."""

    SERVICE_ID = WellKnownService.ZTNA
    NAME = "ztna"
    VERSION = "1.0"

    def __init__(self, policy: Optional[ZTNAPolicy] = None) -> None:
        super().__init__()
        self.policy = policy or ZTNAPolicy()
        self._pending: dict[int, _PendingSetup] = {}
        self._admitted: dict[int, _AdmittedConnection] = {}
        self.denials = 0
        self.readmissions = 0

    # -- setup reassembly (§B.2 oversized setup info) ------------------------
    def _collect_setup(self, header: ILPHeader, conn_id: int) -> _PendingSetup:
        pending = self._pending.setdefault(conn_id, _PendingSetup())
        identity = header.tlvs.get(TLV.IDENTITY)
        if identity is not None:
            pending.identity = identity.decode()
        dest = header.get_str(TLV.DEST_ADDR)
        if dest is not None:
            pending.dest = dest
        frag = header.tlvs.get(TLV.SETUP_FRAG)
        if frag is not None:
            seq = header.get_u64(TLV.SEQUENCE) or 0
            pending.fragments[seq] = frag
        return pending

    def _assemble_posture(self, pending: _PendingSetup) -> Optional[dict[str, Any]]:
        if not pending.fragments:
            return None
        blob = b"".join(
            pending.fragments[i] for i in sorted(pending.fragments)
        )
        try:
            return json.loads(blob.decode())
        except (ValueError, UnicodeDecodeError):
            return None

    # -- datapath ----------------------------------------------------------
    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        conn_id = header.connection_id

        # Downstream of the enforcement point: trust the admission mark if
        # (and only if) the packet came over an SN pipe.
        if (
            TLV_ADMITTED in header.tlvs
            and self.ctx.peer_for_host(packet.l3.src) is None
        ):
            return deliver_toward(self.ctx, header, packet.payload)

        if header.flags & Flags.LAST:
            self._admitted.pop(conn_id, None)
            self._pending.pop(conn_id, None)
            self.ctx.invalidate_connection(conn_id)
            return Verdict.drop()

        admitted = self._admitted.get(conn_id)
        if admitted is not None:
            # Cache entry was evicted (or multi-path): re-admit from the
            # internal table — no re-authentication (§B.2).
            self.readmissions += 1
            return self._admit(header, packet, admitted, packet.l3.src)

        is_setup = (
            header.is_first
            or (header.flags & Flags.MORE_HEADER)
            or TLV.SETUP_FRAG in header.tlvs
            or TLV.IDENTITY in header.tlvs
        )
        if is_setup:
            pending = self._collect_setup(header, conn_id)
            if header.flags & Flags.MORE_HEADER:
                # Setup continues in later packets; hold (drop the carrier —
                # setup packets carry no app payload by convention).
                return Verdict(dropped=False)
            return self._try_admit(header, packet, pending)

        # Data packet for a connection we never admitted: zero trust says no.
        self.denials += 1
        return Verdict.drop()

    def _try_admit(
        self, header: ILPHeader, packet: Any, pending: _PendingSetup
    ) -> Verdict:
        assert self.ctx is not None
        conn_id = header.connection_id
        posture = self._assemble_posture(pending)
        if (
            pending.identity is None
            or pending.dest is None
            or posture is None
            or not self.policy.posture.acceptable(posture)
            or not self.policy.permits(pending.dest, pending.identity)
        ):
            self.denials += 1
            self._pending.pop(conn_id, None)
            return Verdict.drop()
        peer = next_peer_toward(self.ctx, header)
        if peer is None:
            self._pending.pop(conn_id, None)
            return Verdict.drop()
        admitted = _AdmittedConnection(
            identity=pending.identity,
            dest=pending.dest,
            peer=peer,
            admitted_at=self.ctx.now(),
        )
        self._admitted[conn_id] = admitted
        self._pending.pop(conn_id, None)
        return self._admit(header, packet, admitted, packet.l3.src)

    def _admit(
        self,
        header: ILPHeader,
        packet: Any,
        admitted: _AdmittedConnection,
        src: str,
    ) -> Verdict:
        key = CacheKey(
            src=src, service_id=self.SERVICE_ID, connection_id=header.connection_id
        )
        # Recompute the peer in case topology moved since admission.
        assert self.ctx is not None
        peer = next_peer_toward(self.ctx, header) or admitted.peer
        out = header.copy()
        for tlv in (TLV.IDENTITY, TLV.SETUP_FRAG, TLV.SEQUENCE):
            out.tlvs.pop(tlv, None)
        out.set_str(TLV_ADMITTED, self.ctx.node_address)
        verdict = Verdict.forward(peer, out, packet.payload)
        # The fast-path copy must carry the admission mark too.
        target = ForwardTarget(
            peer,
            tlv_updates=((TLV_ADMITTED, self.ctx.node_address.encode()),),
        )
        verdict.installs.append(
            (key, Decision(action=Action.FORWARD, targets=(target,)))
        )
        return verdict

    # -- fault tolerance ------------------------------------------------------
    def checkpoint(self) -> dict[str, Any]:
        return {
            "admitted": {
                conn_id: (a.identity, a.dest, a.peer, a.admitted_at)
                for conn_id, a in self._admitted.items()
            }
        }

    def restore(self, state: dict[str, Any]) -> None:
        self._admitted = {
            int(conn_id): _AdmittedConnection(*vals)
            for conn_id, vals in state.get("admitted", {}).items()
        }


def make_setup_packets(
    identity: str, posture: dict[str, Any], fragment_size: int = 64
) -> list[dict[int, bytes]]:
    """Client-side helper: TLV dicts for a (possibly fragmented) ZTNA setup.

    Returns one TLV dict per setup packet; all but the last should be sent
    with the MORE_HEADER flag.
    """
    blob = json.dumps(posture).encode()
    fragments = [
        blob[i : i + fragment_size] for i in range(0, len(blob), fragment_size)
    ] or [b"{}"]
    packets = []
    for seq, frag in enumerate(fragments):
        tlvs: dict[int, bytes] = {
            TLV.SETUP_FRAG: frag,
            TLV.SEQUENCE: seq.to_bytes(8, "big"),
        }
        if seq == 0:
            tlvs[TLV.IDENTITY] = identity.encode()
        packets.append(tlvs)
    return packets

"""Mobility lookup service (§6.3 — one of the paper's prototype services).

Hosts move: a phone walks from one access network (and first-hop SN) to
another. The mobility service keeps a *stable identifier* usable by
correspondents while the host's attachment point changes:

* the mobile host registers a stable name with the service;
* on every re-association it sends a binding update (authenticated with
  its lookup-service key) to its new first-hop SN, which records the new
  (address, SN) binding in the global lookup service;
* correspondents address traffic to the stable name; each SN's mobility
  module resolves the *current* binding on the slow path, and binding
  updates invalidate stale decision-cache entries so in-flight connections
  re-route within one slow-path hit (the §B.2 eviction contract doing
  useful work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..core.decision_cache import CacheKey, Decision
from ..core.ilp import Flags, ILPHeader, TLV
from ..core.service_module import ServiceModule, Verdict, WellKnownService
from .common import deliver_toward

from ..core.service_module import WellKnownService as _WKS
SERVICE_ID_MOBILITY = _WKS.MOBILITY

OP_BIND = b"bind"
TLV_STABLE_NAME = TLV.TOPIC


@dataclass(frozen=True)
class Binding:
    stable_name: str
    address: str
    sn_address: str
    sequence: int


class MobilityService(ServiceModule):
    """Stable-name indirection with authenticated binding updates."""

    SERVICE_ID = SERVICE_ID_MOBILITY
    NAME = "mobility"
    VERSION = "1.0"

    def __init__(self) -> None:
        super().__init__()
        self.binding_updates = 0
        self.reroutes = 0
        self.rejected_updates = 0

    # -- binding updates (control plane) -----------------------------------
    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        if header.tlvs.get(TLV.SERVICE_OPTS, b"") != OP_BIND:
            return Verdict.drop()
        stable = header.get_str(TLV_STABLE_NAME)
        host = header.get_str(TLV.SRC_HOST)
        signature = header.tlvs.get(TLV.SIGNATURE, b"")
        sequence = header.get_u64(TLV.SEQUENCE) or 0
        if stable is None or host is None:
            return Verdict.drop()
        control = self.ctx.control_plane()
        lookup = control.lookup
        # Authenticate: the update must be signed by the key that owns the
        # host address in the lookup service (prevents binding hijacks).
        record = lookup.address_record(host)
        if record is None or not lookup.registry.verify(
            record.owner_public, self._bind_message(stable, host, sequence), signature
        ):
            self.rejected_updates += 1
            return Verdict.drop()
        current = lookup.address_record(f"mobility:{stable}")
        if current is not None and current.owner_public != record.owner_public:
            # The stable name is anchored to its first binder's key: a
            # different identity cannot take it over (anti-hijack).
            self.rejected_updates += 1
            return Verdict.drop()
        current_seq = (current.metadata.get("sequence", -1) if current else -1)
        if sequence <= current_seq:
            self.rejected_updates += 1  # replayed/stale update
            return Verdict.drop()
        lookup.upsert_alias(
            f"mobility:{stable}",
            record.owner_public,
            [self.ctx.node_address],
            address=host,
            sequence=sequence,
        )
        self.binding_updates += 1
        # New attachment point: stale fast-path routes must re-resolve.
        self.invalidate_stale_routes()
        return Verdict(dropped=False)

    @staticmethod
    def _bind_message(stable: str, host: str, sequence: int) -> bytes:
        return f"mobility-bind|{stable}|{host}|{sequence}".encode()

    # -- data path -----------------------------------------------------------
    def resolve(self, stable: str) -> Optional[Binding]:
        assert self.ctx is not None
        record = self.ctx.control_plane().lookup.address_record(
            f"mobility:{stable}"
        )
        if record is None:
            return None
        return Binding(
            stable_name=stable,
            address=record.metadata["address"],
            sn_address=record.associated_sns[0],
            sequence=record.metadata["sequence"],
        )

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        stable = header.get_str(TLV_STABLE_NAME)
        if stable is None:
            # No stable name: behave like plain delivery.
            return deliver_toward(self.ctx, header, packet.payload)
        binding = self.resolve(stable)
        if binding is None:
            return Verdict.drop()
        out = header.copy()
        out.set_str(TLV.DEST_ADDR, binding.address)
        out.set_str(TLV.DEST_SN, binding.sn_address)
        verdict = deliver_toward(self.ctx, out, packet.payload)
        if verdict.emits:
            self.reroutes += 1
        # Deliberately no decision-cache install: a binding can change
        # between any two packets, and the binding update only reaches the
        # mobile's current SN — per-packet resolution keeps every SN on the
        # path correct without an invalidation protocol.
        return verdict

    def invalidate_stale_routes(self) -> int:
        """Called after a binding update: flush fast-path state so traffic
        re-resolves (Appendix B: eviction is always safe)."""
        assert self.ctx is not None
        return self.ctx.node.cache.evict_random_fraction(1.0)


# -- host-side agent -----------------------------------------------------------

def send_binding_update(
    host, stable_name: str, sequence: int, via: str = None
) -> bool:
    """Register/refresh the mobile host's binding at its current SN.

    After a move, pass ``via`` = the new SN's address (the mobile knows
    which attachment it just made; the default first-hop choice may still
    point at the old one).
    """
    signature = host.keypair.sign(
        MobilityService._bind_message(stable_name, host.address, sequence)
    )
    return host.send_control(
        SERVICE_ID_MOBILITY,
        {
            TLV.SERVICE_OPTS: OP_BIND,
            TLV_STABLE_NAME: stable_name.encode(),
            TLV.SEQUENCE: sequence.to_bytes(8, "big"),
            TLV.SIGNATURE: signature,
        },
        via=via,
    )


def connect_to_mobile(host, stable_name: str):
    """Correspondent-side: open a connection addressed by stable name."""
    return host.connect(
        SERVICE_ID_MOBILITY,
        tlvs={TLV_STABLE_NAME: stable_name.encode()},
        allow_direct=False,
    )

"""Multipoint delivery services: multicast, anycast, pub/sub (§6.2).

All three share the membership machinery of
:mod:`repro.control.membership` (joins authorized against the lookup
service, sender registration, SN→core→lookup propagation with watches) and
a staged forwarding scheme:

* ``host`` stage — a packet fresh from a registered sender's host. The
  first-hop SN fans out: local member hosts, other member SNs in its
  edomain (``intra`` stage), and member edomains (``inter`` stage).
* ``intra`` stage — SN→SN within one edomain; the receiver delivers to its
  local member hosts only (no re-fanout, preventing duplicates).
* ``inter`` stage — carries a destination edomain; border SNs relay it
  until the entry SN of that edomain expands it into local+intra fanout.

Multipoint services are content-routing (group-addressed), so they do not
install decision-cache entries: membership can change between any two
packets, and the slow path recomputes the fanout each time. (A fast-path
variant with invalidation is a known optimization; see DESIGN.md §6.)

Pub/sub additionally retains the last N messages per topic and supports
host-driven replay — the paper's host-driven state-reconstruction story
for stateful services (§3.3).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from ..core.ilp import Flags, ILPHeader, TLV
from ..core.packet import Payload, make_payload
from ..core.service_module import Emit, ServiceModule, Verdict, WellKnownService

# Service-private TLVs shared by the multipoint family.
TLV_STAGE = TLV.SERVICE_PRIVATE  # b"intra" | b"inter" (absent = host stage)
TLV_DEST_EDOMAIN = TLV.SERVICE_PRIVATE + 1

STAGE_INTRA = b"intra"
STAGE_INTER = b"inter"

# Control verbs (in SERVICE_OPTS).
OP_JOIN = b"join"
OP_LEAVE = b"leave"
OP_REGISTER_SENDER = b"register-sender"
OP_UNREGISTER_SENDER = b"unregister-sender"
OP_REPLAY = b"replay"
OP_ACK = b"ok"
OP_DENIED = b"denied"


class MultipointService(ServiceModule):
    """Shared control plane + staged fanout for the multipoint family."""

    #: deliver to all local members (multicast/pubsub) or exactly one (anycast)
    DELIVER_ALL = True

    # -- control plane ----------------------------------------------------
    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        op = header.tlvs.get(TLV.SERVICE_OPTS, b"")
        group = header.get_str(TLV.TOPIC)
        host = header.get_str(TLV.SRC_HOST)
        if group is None or host is None:
            return Verdict.drop()
        agent = self.ctx.control_plane().membership
        ok = False
        if op == OP_JOIN:
            signature = header.tlvs.get(TLV.SIGNATURE, b"")
            ok = agent.join(self._group_key(group), host, signature)
        elif op == OP_LEAVE:
            ok = agent.leave(self._group_key(group), host)
        elif op == OP_REGISTER_SENDER:
            agent.register_sender(self._group_key(group), host)
            ok = True
        elif op == OP_UNREGISTER_SENDER:
            agent.unregister_sender(self._group_key(group), host)
            ok = True
        elif op == OP_REPLAY:
            return self._handle_replay(header, group, host)
        ack = ILPHeader(
            service_id=self.SERVICE_ID,
            connection_id=header.connection_id,
            flags=Flags.CONTROL,
        )
        ack.set_str(TLV.TOPIC, group)
        ack.tlvs[TLV.SERVICE_OPTS] = OP_ACK if ok else OP_DENIED
        return Verdict(emits=[Emit(host, ack, Payload(l4=None))])

    def _handle_replay(self, header: ILPHeader, group: str, host: str) -> Verdict:
        """Pub/sub overrides; others deny replay."""
        return Verdict.drop()

    def _group_key(self, group: str) -> str:
        """Namespace groups per service so topics ≠ multicast groups."""
        return f"{self.NAME}:{group}"

    # -- staged data path ---------------------------------------------------
    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        group = header.get_str(TLV.TOPIC)
        if group is None:
            return Verdict.drop()
        stage = header.tlvs.get(TLV_STAGE)
        if stage is None:
            return self._handle_host_stage(header, packet, group)
        if stage == STAGE_INTRA:
            return self._deliver_local(header, packet, group, exclude=None)
        if stage == STAGE_INTER:
            return self._handle_inter_stage(header, packet, group)
        return Verdict.drop()

    def _handle_host_stage(
        self, header: ILPHeader, packet: Any, group: str
    ) -> Verdict:
        assert self.ctx is not None
        agent = self.ctx.control_plane().membership
        sender = header.get_str(TLV.SRC_HOST)
        key = self._group_key(group)
        if sender is None or not agent.is_sender(key, sender):
            # §6.2: hosts must register as senders before sending.
            return Verdict.drop()
        self._on_publish(group, packet.payload)
        if self.DELIVER_ALL:
            return self._fanout_all(header, packet, group, exclude=sender)
        return self._fanout_one(header, packet, group, exclude=sender)

    def _handle_inter_stage(
        self, header: ILPHeader, packet: Any, group: str
    ) -> Verdict:
        assert self.ctx is not None
        dest_edomain = header.get_str(TLV_DEST_EDOMAIN)
        if dest_edomain is None:
            return Verdict.drop()
        if dest_edomain != self.ctx.edomain_name:
            peer = self.ctx.node.border_peer_for(dest_edomain)
            if peer is None:
                return Verdict.drop()
            return Verdict.forward(peer, header, packet.payload)
        # We are the entry SN of the destination edomain: expand.
        entry_header = header.copy()
        del entry_header.tlvs[TLV_STAGE]
        entry_header.tlvs.pop(TLV_DEST_EDOMAIN, None)
        if self.DELIVER_ALL:
            verdict = self._deliver_local(entry_header, packet, group, exclude=None)
            verdict.emits.extend(
                self._intra_emits(entry_header, packet, group)
            )
            return verdict
        return self._fanout_one(
            entry_header, packet, group, exclude=None, local_edomain_only=True
        )

    # -- fanout helpers ------------------------------------------------------
    def _deliver_local(
        self, header: ILPHeader, packet: Any, group: str, exclude: Optional[str]
    ) -> Verdict:
        assert self.ctx is not None
        agent = self.ctx.control_plane().membership
        members = agent.members_of(self._group_key(group))
        emits = []
        for host in sorted(members):
            if host == exclude:
                continue
            out = header.copy()
            out.tlvs.pop(TLV_STAGE, None)
            out.tlvs.pop(TLV_DEST_EDOMAIN, None)
            emits.append(Emit(host, out, packet.payload))
        return Verdict(emits=emits)

    def _intra_emits(
        self, header: ILPHeader, packet: Any, group: str
    ) -> list[Emit]:
        assert self.ctx is not None
        agent = self.ctx.control_plane().membership
        emits = []
        for sn_addr in sorted(agent.member_sns_in_edomain(self._group_key(group))):
            if sn_addr == self.ctx.node_address:
                continue
            peer = self.ctx.next_hop_for_sn(sn_addr)
            if peer is None:
                continue
            out = header.copy()
            out.tlvs[TLV_STAGE] = STAGE_INTRA
            out.tlvs.pop(TLV_DEST_EDOMAIN, None)
            emits.append(Emit(peer, out, packet.payload))
        return emits

    def _inter_emits(
        self, header: ILPHeader, packet: Any, group: str
    ) -> list[Emit]:
        assert self.ctx is not None
        agent = self.ctx.control_plane().membership
        emits = []
        for edomain in sorted(agent.member_edomains(self._group_key(group))):
            peer = self.ctx.node.border_peer_for(edomain)
            if peer is None:
                continue
            out = header.copy()
            out.tlvs[TLV_STAGE] = STAGE_INTER
            out.set_str(TLV_DEST_EDOMAIN, edomain)
            emits.append(Emit(peer, out, packet.payload))
        return emits

    def _fanout_all(
        self, header: ILPHeader, packet: Any, group: str, exclude: Optional[str]
    ) -> Verdict:
        verdict = self._deliver_local(header, packet, group, exclude=exclude)
        verdict.emits.extend(self._intra_emits(header, packet, group))
        verdict.emits.extend(self._inter_emits(header, packet, group))
        return verdict

    def _fanout_one(
        self,
        header: ILPHeader,
        packet: Any,
        group: str,
        exclude: Optional[str],
        local_edomain_only: bool = False,
    ) -> Verdict:
        """Anycast: deliver to exactly one member, nearest first."""
        assert self.ctx is not None
        agent = self.ctx.control_plane().membership
        key = self._group_key(group)
        local = sorted(host for host in agent.members_of(key) if host != exclude)
        if local:
            out = header.copy()
            out.tlvs.pop(TLV_STAGE, None)
            out.tlvs.pop(TLV_DEST_EDOMAIN, None)
            return Verdict(emits=[Emit(local[0], out, packet.payload)])
        member_sns = sorted(
            sn for sn in agent.member_sns_in_edomain(key)
            if sn != self.ctx.node_address
        )
        if member_sns:
            peer = self.ctx.next_hop_for_sn(member_sns[0])
            if peer is not None:
                out = header.copy()
                out.tlvs[TLV_STAGE] = STAGE_INTRA
                return Verdict(emits=[Emit(peer, out, packet.payload)])
        if local_edomain_only:
            return Verdict.drop()
        edomains = sorted(agent.member_edomains(key))
        if edomains:
            peer = self.ctx.node.border_peer_for(edomains[0])
            if peer is not None:
                out = header.copy()
                out.tlvs[TLV_STAGE] = STAGE_INTER
                out.set_str(TLV_DEST_EDOMAIN, edomains[0])
                return Verdict(emits=[Emit(peer, out, packet.payload)])
        return Verdict.drop()

    # -- hooks --------------------------------------------------------------
    def _on_publish(self, group: str, payload: Payload) -> None:
        """Called at the sender's first-hop SN for each published message."""


class MulticastService(MultipointService):
    """Group-addressed packet fanout to every member."""

    SERVICE_ID = WellKnownService.MULTICAST
    NAME = "multicast"
    VERSION = "1.0"
    DELIVER_ALL = True


class AnycastService(MultipointService):
    """Group-addressed delivery to the nearest single member.

    For anycast, an ``intra``-stage packet should reach one host only, so
    the local-delivery override picks the first member.
    """

    SERVICE_ID = WellKnownService.ANYCAST
    NAME = "anycast"
    VERSION = "1.0"
    DELIVER_ALL = False

    def _deliver_local(
        self, header: ILPHeader, packet: Any, group: str, exclude: Optional[str]
    ) -> Verdict:
        assert self.ctx is not None
        agent = self.ctx.control_plane().membership
        members = sorted(
            host
            for host in agent.members_of(self._group_key(group))
            if host != exclude
        )
        if not members:
            return Verdict.drop()
        out = header.copy()
        out.tlvs.pop(TLV_STAGE, None)
        out.tlvs.pop(TLV_DEST_EDOMAIN, None)
        return Verdict(emits=[Emit(members[0], out, packet.payload)])


class PubSubService(MultipointService):
    """Topic-based message delivery with bounded retention + replay.

    Retention lives at the *publisher's first-hop SN* (where messages enter
    the system). A subscriber that lost state (§3.3 host-driven state
    reconstruction) sends an ``OP_REPLAY`` control message; any SN that
    retains messages for the topic answers with the retained backlog.
    """

    SERVICE_ID = WellKnownService.PUBSUB
    NAME = "pubsub"
    VERSION = "1.0"
    DELIVER_ALL = True

    def __init__(self, retention: int = 64) -> None:
        super().__init__()
        self.retention = retention
        self._retained: dict[str, deque[bytes]] = {}
        self.published = 0

    def _on_publish(self, group: str, payload: Payload) -> None:
        buffer = self._retained.setdefault(
            group, deque(maxlen=self.retention)
        )
        buffer.append(payload.data)
        self.published += 1

    def _handle_replay(self, header: ILPHeader, group: str, host: str) -> Verdict:
        assert self.ctx is not None
        emits = []
        for i, message in enumerate(self._retained.get(group, ())):
            out = ILPHeader(
                service_id=self.SERVICE_ID,
                connection_id=header.connection_id,
            )
            out.set_str(TLV.TOPIC, group)
            out.set_u64(TLV.SEQUENCE, i)
            peer = self.ctx.peer_for_host(host)
            target = peer if peer is not None else host
            emits.append(Emit(target, out, make_payload(message)))
        return Verdict(emits=emits)

    def retained(self, group: str) -> list[bytes]:
        """The currently retained messages for a topic, oldest first."""
        return list(self._retained.get(group, ()))

    def retain(self, group: str, message: bytes) -> None:
        """Append a message to a topic's retention buffer directly.

        Tests and state-seeding paths use this; the data path goes through
        ``_on_publish``.
        """
        self._retained.setdefault(group, deque(maxlen=self.retention)).append(
            message
        )

    def set_retention(self, retention: int) -> None:
        """Change the per-topic retention bound, trimming oldest first."""
        self.retention = retention
        self._retained = {
            group: deque(buffer, maxlen=retention)
            for group, buffer in self._retained.items()
        }

    def checkpoint(self) -> dict[str, Any]:
        return {
            "retained": {k: list(v) for k, v in self._retained.items()},
            "published": self.published,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self._retained = {
            k: deque(v, maxlen=self.retention)
            for k, v in state.get("retained", {}).items()
        }
        self.published = state.get("published", 0)


# -- host-side helpers (the client logic of §3.1 "Host support") -------------

def join_group(host, service_id: int, group: str, signature: bytes = b"") -> bool:
    """Send a join for ``group`` to the host's first-hop SN."""
    tlvs = {TLV.SERVICE_OPTS: OP_JOIN, TLV.TOPIC: group.encode()}
    if signature:
        tlvs[TLV.SIGNATURE] = signature
    return host.send_control(service_id, tlvs)


def leave_group(host, service_id: int, group: str) -> bool:
    return host.send_control(
        service_id, {TLV.SERVICE_OPTS: OP_LEAVE, TLV.TOPIC: group.encode()}
    )


def register_sender(host, service_id: int, group: str) -> bool:
    return host.send_control(
        service_id,
        {TLV.SERVICE_OPTS: OP_REGISTER_SENDER, TLV.TOPIC: group.encode()},
    )


def request_replay(host, service_id: int, group: str) -> bool:
    return host.send_control(
        service_id, {TLV.SERVICE_OPTS: OP_REPLAY, TLV.TOPIC: group.encode()}
    )


def publish(host, service_id: int, group: str, data: bytes):
    """Open (or reuse) a connection to the group and publish one message."""
    conn = host.connect(
        service_id, tlvs={TLV.TOPIC: group.encode()}, allow_direct=False
    )
    host.send(conn, data)
    return conn

"""Private relay (§6.2) — the two-hop split-trust proxy.

Trust split (as in Apple's iCloud Private Relay):

* the **ingress** relay (client's first-hop SN, enclave) sees the client's
  address but only an encrypted inner blob — it learns the egress SN, not
  the destination;
* the **egress** relay (another SN, enclave) sees the destination but not
  the client: packets arrive from the ingress SN with identity stripped.

The client onion-wraps each outbound message with keys shared with the two
relays (obtained from the relays' published metadata; the key exchange
itself is out of band, as in the real service). Responses retrace the
connection-id mappings held at each relay.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.ilp import ILPHeader, TLV
from ..core.packet import Payload, make_payload
from ..core.service_module import ServiceModule, Verdict, WellKnownService
from ..libs.cryptolib import CryptoLibrary
from .common import deliver_toward

OP_OUT = b"out"  # client -> ingress -> egress -> destination
OP_BACK = b"back"  # destination -> egress -> ingress -> client


def relay_key(sn_address: str) -> bytes:
    """The relay's published wrapping key (deterministic for simulation)."""
    from ..core import crypto

    return crypto.derive_key(
        crypto.derive_key(b"private-relay-root".ljust(16, b"\x00"), "relay"),
        "key",
        sn_address.encode(),
    )


def wrap_for_relay(
    crypto_lib: CryptoLibrary,
    ingress_sn: str,
    egress_sn: str,
    dest_host: str,
    data: bytes,
) -> bytes:
    """Client-side onion construction."""
    inner = crypto_lib.encrypt(
        relay_key(egress_sn),
        json.dumps({"dest": dest_host, "data": data.hex()}).encode(),
    )
    outer = crypto_lib.encrypt(
        relay_key(ingress_sn),
        json.dumps({"egress": egress_sn, "blob": inner.hex()}).encode(),
    )
    return outer


class PrivateRelayService(ServiceModule):
    """Both relay roles in one module; the packet's stage selects the role."""

    SERVICE_ID = WellKnownService.PRIVATE_RELAY
    NAME = "private-relay"
    VERSION = "1.0"
    REQUIRES_ENCLAVE = True

    def __init__(self) -> None:
        super().__init__()
        self._crypto = CryptoLibrary()
        #: ingress role: connection -> client address
        self._ingress_clients: dict[int, str] = {}
        #: egress role: connection -> ingress SN address
        self._egress_ingress: dict[int, str] = {}
        self.relayed_out = 0
        self.relayed_back = 0

    def _my_key(self) -> bytes:
        assert self.ctx is not None
        return relay_key(self.ctx.node_address)

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        op = header.tlvs.get(TLV.SERVICE_OPTS, OP_OUT)
        if op == OP_BACK:
            return self._handle_back(header, packet)
        return self._handle_out(header, packet)

    # -- outbound ----------------------------------------------------------
    def _handle_out(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        # Try to peel a layer with our key; if it names an egress we are the
        # ingress, if it names a destination we are the egress, and if it
        # does not decrypt we are just a relay hop on the SN path.
        try:
            peeled = json.loads(
                self._crypto.decrypt(self._my_key(), packet.payload.data).decode()
            )
        except Exception:
            # Not a layer for us: plain relay (border hop or final host hop).
            return deliver_toward(self.ctx, header, packet.payload)

        if "egress" in peeled:  # ingress role
            client = header.get_str(TLV.SRC_HOST)
            if client is None or self.ctx.peer_for_host(client) is None:
                return Verdict.drop()
            self._ingress_clients[header.connection_id] = client
            out = ILPHeader(
                service_id=self.SERVICE_ID, connection_id=header.connection_id
            )
            out.tlvs[TLV.SERVICE_OPTS] = OP_OUT
            out.set_str(TLV.DEST_SN, peeled["egress"])
            out.set_str(TLV.DEST_ADDR, peeled["egress"])
            out.set_str(TLV.RETURN_PATH, self.ctx.node_address)
            self.relayed_out += 1
            return deliver_toward(
                self.ctx, out, make_payload(bytes.fromhex(peeled["blob"]))
            )

        if "dest" in peeled:  # egress role
            ingress = header.get_str(TLV.RETURN_PATH)
            if ingress is None:
                return Verdict.drop()
            self._egress_ingress[header.connection_id] = ingress
            out = ILPHeader(
                service_id=self.SERVICE_ID, connection_id=header.connection_id
            )
            out.tlvs[TLV.SERVICE_OPTS] = OP_OUT
            out.set_str(TLV.DEST_ADDR, peeled["dest"])
            # Note: no SRC_HOST, no RETURN_PATH — the destination sees only
            # the egress SN.
            self.relayed_out += 1
            return deliver_toward(
                self.ctx, out, make_payload(bytes.fromhex(peeled["data"]))
            )
        return Verdict.drop()

    # -- return path ----------------------------------------------------------
    def _handle_back(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        conn_id = header.connection_id
        client = self._ingress_clients.get(conn_id)
        if client is not None:  # ingress role: last hop to the client
            out = ILPHeader(service_id=self.SERVICE_ID, connection_id=conn_id)
            out.tlvs[TLV.SERVICE_OPTS] = OP_BACK
            out.set_str(TLV.DEST_ADDR, client)
            self.relayed_back += 1
            return deliver_toward(self.ctx, out, packet.payload)
        ingress = self._egress_ingress.get(conn_id)
        if ingress is not None:  # egress role: send back toward ingress
            out = ILPHeader(service_id=self.SERVICE_ID, connection_id=conn_id)
            out.tlvs[TLV.SERVICE_OPTS] = OP_BACK
            out.set_str(TLV.DEST_SN, ingress)
            out.set_str(TLV.DEST_ADDR, ingress)
            self.relayed_back += 1
            return deliver_toward(self.ctx, out, packet.payload)
        return deliver_toward(self.ctx, header, packet.payload)


def send_via_relay(
    host,
    ingress_sn: str,
    egress_sn: str,
    dest_host: str,
    data: bytes,
    crypto_lib: Optional[CryptoLibrary] = None,
):
    """Client-side helper: open a relayed connection and send one message."""
    lib = crypto_lib or CryptoLibrary()
    blob = wrap_for_relay(lib, ingress_sn, egress_sn, dest_host, data)
    conn = host.connect(WellKnownService.PRIVATE_RELAY, allow_direct=False)
    host.send(conn, blob)
    return conn


def reply_via_relay(host, conn_id: int, egress_sn: str, data: bytes) -> None:
    """Destination-side helper: answer a relayed connection."""
    conn = host.connect(
        WellKnownService.PRIVATE_RELAY, dest_sn=egress_sn, allow_direct=False
    )
    host.adopt_connection(conn, conn_id)
    host.send(
        conn,
        data,
        extra_tlvs={
            TLV.SERVICE_OPTS: OP_BACK,
            TLV.DEST_SN: egress_sn.encode(),
            TLV.DEST_ADDR: egress_sn.encode(),
        },
        first=False,
    )

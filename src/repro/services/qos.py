"""Last-hop QoS (§6.2).

A receiver tells its first-hop SN — which sits on the far side of the
congested access link — the total bandwidth of that link plus a set of
weights and/or priorities for traffic streams identified by source
prefixes. The SN then schedules everything it sends toward that host with
strict priority between levels and WFQ within a level, shaped to the
access-link rate, so the congestion point moves from the dumb access link
into a scheduler the user controls.

Invocation is out-of-band (§3.2's second mode): a CONTROL message carrying
the QoS spec installs an :class:`EgressShaper` on the SN's pipe to the
host; thereafter it applies to that host's *entire* incoming traffic, not
just one connection.
"""

from __future__ import annotations

import ipaddress
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.ilp import Flags, ILPHeader, TLV
from ..core.packet import ILPPacket, Payload
from ..core.service_module import Emit, ServiceModule, Verdict, WellKnownService
from ..sched import PriorityScheduler, TokenBucket

OP_CONFIGURE = b"configure"
OP_CLEAR = b"clear"
OP_ACK = b"ok"

DEFAULT_CLASS = "__default__"


@dataclass(frozen=True)
class StreamClass:
    """One traffic class: match by source prefix, schedule by these knobs."""

    name: str
    src_prefix: str  # e.g. "10.1.0.0/16"
    priority: int = 1  # 0 = highest (latency-sensitive)
    weight: float = 1.0


@dataclass
class QoSSpec:
    """The receiver's complete QoS request."""

    link_bps: float
    classes: list[StreamClass]

    def to_json(self) -> bytes:
        return json.dumps(
            {
                "link_bps": self.link_bps,
                "classes": [
                    {
                        "name": c.name,
                        "src_prefix": c.src_prefix,
                        "priority": c.priority,
                        "weight": c.weight,
                    }
                    for c in self.classes
                ],
            }
        ).encode()

    @staticmethod
    def from_json(raw: bytes) -> "QoSSpec":
        data = json.loads(raw.decode())
        return QoSSpec(
            link_bps=float(data["link_bps"]),
            classes=[
                StreamClass(
                    name=c["name"],
                    src_prefix=c["src_prefix"],
                    priority=int(c.get("priority", 1)),
                    weight=float(c.get("weight", 1.0)),
                )
                for c in data["classes"]
            ],
        )


class EgressShaper:
    """Schedules one host's incoming traffic onto its access link.

    ``submit(packet, transmit)`` enqueues; a drain loop (driven by the
    simulator) releases packets at the configured link rate, in
    priority/WFQ order. Classification matches the *inner* source host
    (SRC_HOST would require decrypting the header again, so the SN passes
    the already-known outer source; here we classify on the packet's outer
    L3 source, which for host-destined traffic is the upstream SN — tests
    therefore classify on the recorded original source carried in
    ``packet.qos_class`` when present, falling back to prefix matching).
    """

    def __init__(self, sim, spec: QoSSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.scheduler = PriorityScheduler()
        self._networks: list[tuple[ipaddress.IPv4Network, str]] = []
        for cls in spec.classes:
            self.scheduler.add_flow(cls.name, cls.priority, cls.weight)
            self._networks.append((ipaddress.IPv4Network(cls.src_prefix), cls.name))
        self.scheduler.add_flow(DEFAULT_CLASS, priority=9, weight=1.0)
        self._draining = False
        self.enqueued = 0
        self.transmitted = 0

    def classify(self, packet: ILPPacket) -> str:
        marked = getattr(packet, "qos_class", None)
        if marked is not None:
            return marked if marked in self.scheduler.flows() else DEFAULT_CLASS
        source = packet.qos_src or packet.l3.src
        try:
            addr = ipaddress.IPv4Address(source)
        except ValueError:
            return DEFAULT_CLASS
        for network, name in self._networks:
            if addr in network:
                return name
        return DEFAULT_CLASS

    def submit(self, packet: ILPPacket, transmit: Callable[[ILPPacket], Any]) -> None:
        flow = self.classify(packet)
        self.scheduler.enqueue(flow, packet.wire_size, (packet, transmit))
        self.enqueued += 1
        if not self._draining:
            self._draining = True
            self.sim.schedule(0.0, self._drain)

    def _drain(self) -> None:
        popped = self.scheduler.dequeue()
        if popped is None:
            self._draining = False
            return
        _flow, size, (packet, transmit) = popped
        transmit(packet)
        self.transmitted += 1
        # Next packet leaves after this one's serialization time.
        self.sim.schedule(size * 8 / self.spec.link_bps, self._drain)

    def bytes_delivered(self, class_name: str) -> int:
        return self.scheduler.bytes_dequeued(class_name)


class LastHopQoSService(ServiceModule):
    """The standardized last-hop QoS service module."""

    SERVICE_ID = WellKnownService.LAST_HOP_QOS
    NAME = "last-hop-qos"
    VERSION = "1.0"

    def __init__(self) -> None:
        super().__init__()
        self.shapers: dict[str, EgressShaper] = {}

    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        op = header.tlvs.get(TLV.SERVICE_OPTS, b"")
        host = header.get_str(TLV.SRC_HOST)
        if host is None:
            return Verdict.drop()
        if op == OP_CONFIGURE:
            raw = header.tlvs.get(TLV.SERVICE_PRIVATE)
            if raw is None:
                return Verdict.drop()
            spec = QoSSpec.from_json(raw)
            shaper = EgressShaper(self.ctx.node.sim, spec)
            self.shapers[host] = shaper
            self.ctx.node.set_egress_shaper(host, shaper)
        elif op == OP_CLEAR:
            self.shapers.pop(host, None)
            self.ctx.node.clear_egress_shaper(host)
        else:
            return Verdict.drop()
        ack = ILPHeader(
            service_id=self.SERVICE_ID,
            connection_id=header.connection_id,
            flags=Flags.CONTROL,
        )
        ack.tlvs[TLV.SERVICE_OPTS] = OP_ACK
        return Verdict(emits=[Emit(host, ack, Payload(l4=None))])

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        # QoS is imposed on traffic of *other* services via the egress
        # shaper; data packets addressed to the QoS service itself are not
        # meaningful.
        return Verdict.drop()

    def shaper_for(self, host: str) -> Optional[EgressShaper]:
        return self.shapers.get(host)


def request_qos(host, spec: QoSSpec) -> bool:
    """Host-side helper: ask the first-hop SN for last-hop QoS (§3.2 OOB)."""
    return host.send_control(
        LastHopQoSService.SERVICE_ID,
        {TLV.SERVICE_OPTS: OP_CONFIGURE, TLV.SERVICE_PRIVATE: spec.to_json()},
    )


def clear_qos(host) -> bool:
    return host.send_control(
        LastHopQoSService.SERVICE_ID, {TLV.SERVICE_OPTS: OP_CLEAR}
    )

"""Shared service-module plumbing.

Most point-to-point services end with the same step: route a packet toward
the host named in DEST_ADDR — locally if associated here, else via the
destination's SN (from the DEST_SN TLV or the lookup service) using the
§3.2 inter-edomain forwarding rules. This helper implements that step once.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.ilp import ILPHeader, TLV
from ..core.packet import Payload
from ..core.service_module import Verdict


def resolve_dest_sn(ctx: Any, header: ILPHeader, dest: str) -> Optional[str]:
    """Destination SN address from the header, else the lookup service.

    On a lookup hit the DEST_SN TLV is pinned into the header so downstream
    SNs (and fast-path copies) need not resolve again.
    """
    dest_sn = header.get_str(TLV.DEST_SN)
    if dest_sn is not None:
        return dest_sn
    control = ctx.control_plane()
    if control is None:
        return None
    record = control.lookup.address_record(dest)
    if record is None or not record.associated_sns:
        return None
    dest_sn = record.associated_sns[0]
    header.set_str(TLV.DEST_SN, dest_sn)
    return dest_sn


def next_peer_toward(ctx: Any, header: ILPHeader) -> Optional[str]:
    """The next ILP peer for a DEST_ADDR-addressed packet, or None."""
    dest = header.get_str(TLV.DEST_ADDR)
    if dest is None:
        return None
    local = ctx.peer_for_host(dest)
    if local is not None:
        return local
    dest_sn = resolve_dest_sn(ctx, header, dest)
    if dest_sn is None or dest_sn == ctx.node_address:
        return None
    return ctx.next_hop_for_sn(dest_sn)


def deliver_toward(ctx: Any, header: ILPHeader, payload: Payload) -> Verdict:
    """Forward toward DEST_ADDR, or drop if unroutable."""
    peer = next_peer_toward(ctx, header)
    if peer is None:
        return Verdict.drop()
    return Verdict.forward(peer, header, payload)

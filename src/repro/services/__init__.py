"""Standardized InterEdge service modules (§6).

Each module is written against the common execution environment
(:mod:`repro.core.execution_env`) — the WORA contract — and registered
with a :class:`~repro.core.service_module.ServiceRegistry` under its
well-known service ID. :func:`standard_registry` builds the governance
body's default catalog.
"""

from ..core.service_module import ServiceRegistry, Standardization
from .attest import AttestationClient, AttestationService
from .bulk import BulkDeliveryService, BulkReceiver, offer_object
from .caching import CacheStore, CachingBundleService
from .cluster import (
    ClusterInterconnectService,
    register_cluster_prefix,
    send_cross_cluster,
)
from .common import deliver_toward, next_peer_toward, resolve_dest_sn
from .ddos import (
    DDoSProtectionService,
    ProtectionPolicy,
    make_puzzle_challenge,
    solve_puzzle,
    subscribe_protection,
)
from .firewall import FirewallService, ImposedFirewall, Rule, RuleSet
from .ip_delivery import IPDeliveryService
from .mixnet import MixnetService, build_circuit, mix_key, send_via_mixnet
from .mobility import MobilityService, connect_to_mobile, send_binding_update
from .msgqueue import MessageQueueService, QueueState, ack, produce, queue_home, subscribe
from .multipoint import (
    AnycastService,
    MulticastService,
    MultipointService,
    PubSubService,
    join_group,
    leave_group,
    publish,
    register_sender,
    request_replay,
)
from .null_service import NullService
from .odns import ODNSClient, ODNSProxyService, ODNSResolver
from .private_relay import (
    PrivateRelayService,
    relay_key,
    reply_via_relay,
    send_via_relay,
    wrap_for_relay,
)
from .qos import (
    EgressShaper,
    LastHopQoSService,
    QoSSpec,
    StreamClass,
    clear_qos,
    request_qos,
)
from .sdwan import ImposedSDWAN, PathMetric, PathSelector, SDWANService
from .timesync import GPSClock, TimeOrderedService
from .transcode import TranscodeBundleService, set_rendition
from .vpn import VPNAuthenticator, VPNService, register_vpn_endpoint
from .ztna import PosturePolicy, ZTNAPolicy, ZTNAService, make_setup_packets

#: Every standardized module class, in service-id order.
ALL_SERVICES = [
    NullService,
    IPDeliveryService,
    CachingBundleService,
    PubSubService,
    AnycastService,
    MulticastService,
    LastHopQoSService,
    FirewallService,
    ZTNAService,
    SDWANService,
    DDoSProtectionService,
    ODNSProxyService,
    PrivateRelayService,
    MixnetService,
    MessageQueueService,
    BulkDeliveryService,
    TimeOrderedService,
    VPNService,
    AttestationService,
    MobilityService,
    ClusterInterconnectService,
    TranscodeBundleService,
]


def standard_registry() -> ServiceRegistry:
    """The governance body's default catalog: everything REQUIRED."""
    registry = ServiceRegistry()
    for module_cls in ALL_SERVICES:
        registry.register(module_cls, Standardization.REQUIRED)
    return registry


__all__ = [
    "ALL_SERVICES",
    "AnycastService",
    "AttestationClient",
    "AttestationService",
    "BulkDeliveryService",
    "BulkReceiver",
    "CacheStore",
    "CachingBundleService",
    "ClusterInterconnectService",
    "DDoSProtectionService",
    "EgressShaper",
    "FirewallService",
    "GPSClock",
    "IPDeliveryService",
    "ImposedFirewall",
    "ImposedSDWAN",
    "LastHopQoSService",
    "MessageQueueService",
    "MixnetService",
    "MobilityService",
    "MulticastService",
    "MultipointService",
    "NullService",
    "ODNSClient",
    "ODNSProxyService",
    "ODNSResolver",
    "PathMetric",
    "PathSelector",
    "PosturePolicy",
    "PrivateRelayService",
    "ProtectionPolicy",
    "PubSubService",
    "QoSSpec",
    "QueueState",
    "Rule",
    "RuleSet",
    "SDWANService",
    "StreamClass",
    "TimeOrderedService",
    "TranscodeBundleService",
    "VPNAuthenticator",
    "VPNService",
    "ZTNAPolicy",
    "ZTNAService",
    "ack",
    "build_circuit",
    "clear_qos",
    "connect_to_mobile",
    "deliver_toward",
    "join_group",
    "leave_group",
    "make_puzzle_challenge",
    "make_setup_packets",
    "mix_key",
    "next_peer_toward",
    "offer_object",
    "produce",
    "publish",
    "queue_home",
    "register_cluster_prefix",
    "register_sender",
    "register_vpn_endpoint",
    "relay_key",
    "reply_via_relay",
    "request_qos",
    "request_replay",
    "resolve_dest_sn",
    "send_binding_update",
    "send_cross_cluster",
    "send_via_mixnet",
    "set_rendition",
    "send_via_relay",
    "solve_puzzle",
    "standard_registry",
    "subscribe",
    "subscribe_protection",
    "wrap_for_relay",
]

"""Transcode bundle (§3.1 library list, §3.2 bundles, §5 payment models).

A second standardized bundle (beside caching): delivery + edge
re-encoding for live media, where caching is useless (every frame is new)
but downscaling at the edge saves the last-mile. The sender pushes
full-rate chunks; the *receiver's* first-hop SN re-encodes each chunk to
the profile the receiver asked for — per-receiver renditions from one
source stream.

Receivers pick their rendition out of band (a control message), which is
the §3.2 second invocation mode applied to a bundle option.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.ilp import Flags, ILPHeader, TLV
from ..core.packet import Payload, make_payload
from ..core.service_module import Emit, ServiceModule, Verdict, WellKnownService
from .common import deliver_toward

OP_SET_PROFILE = b"set-profile"
TLV_PROFILE = TLV.SERVICE_PRIVATE + 7


class TranscodeBundleService(ServiceModule):
    """Delivery + receiver-side edge re-encoding."""

    SERVICE_ID = WellKnownService.TRANSCODE_BUNDLE
    NAME = "transcode-bundle"
    VERSION = "1.0"

    def __init__(self) -> None:
        super().__init__()
        #: receiver host -> requested profile name
        self.profiles: dict[str, str] = {}
        self.chunks_transcoded = 0
        self.chunks_passed = 0

    # -- control: receivers pick their rendition ---------------------------
    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        if header.tlvs.get(TLV.SERVICE_OPTS, b"") != OP_SET_PROFILE:
            return Verdict.drop()
        receiver = header.get_str(TLV.SRC_HOST)
        profile = header.get_str(TLV_PROFILE)
        if receiver is None or profile is None:
            return Verdict.drop()
        media = self.ctx.libs.get("media")
        if profile not in media.profiles():
            return Verdict.drop()
        self.profiles[receiver] = profile
        # Persist the choice as standardized per-customer config (§5
        # portability: it moves with the customer between IESPs).
        self.ctx.config.set(self.SERVICE_ID, receiver, "profile", profile)
        return Verdict(dropped=False)

    # -- data path -----------------------------------------------------------
    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        dest = header.get_str(TLV.DEST_ADDR)
        if dest is None:
            return Verdict.drop()
        local = self.ctx.peer_for_host(dest)
        if local is None:
            # Not the receiver's SN yet: plain delivery (no re-encode
            # upstream — the edge nearest the receiver knows the rendition).
            self.chunks_passed += 1
            return deliver_toward(self.ctx, header, packet.payload)
        profile = self.profiles.get(dest) or self.ctx.config.get(
            self.SERVICE_ID, dest, "profile"
        )
        if profile is None:
            self.chunks_passed += 1
            return Verdict.forward(local, header, packet.payload)
        media = self.ctx.libs.get("media")
        encoded = media.transcode(packet.payload.data, profile)
        self.chunks_transcoded += 1
        return Verdict.forward(local, header, make_payload(encoded))

    def checkpoint(self) -> dict[str, Any]:
        return {"profiles": dict(self.profiles)}

    def restore(self, state: dict[str, Any]) -> None:
        self.profiles = dict(state.get("profiles", {}))


def set_rendition(host, profile: str) -> bool:
    """Receiver-side: ask the first-hop SN for a rendition (OOB, §3.2)."""
    return host.send_control(
        WellKnownService.TRANSCODE_BUNDLE,
        {TLV.SERVICE_OPTS: OP_SET_PROFILE, TLV_PROFILE: profile.encode()},
    )

"""Firewall / NGFW service (§1.2, §3.2 operator-imposed example).

Two deployment shapes, matching the paper:

* :class:`ImposedFirewall` — the operator-imposed form a pass-through SN
  runs on *all* traffic entering/leaving an enterprise (§3.2's third
  invocation mode). Implements the ``impose`` protocol.
* :class:`FirewallService` — the standardized service-module form (an
  in-network next-generation firewall) that endpoints can invoke, with
  payload inspection via the execution environment's regex library.

Rules are ordered allow/deny entries over (source prefix, dest prefix,
service id), plus optional payload-signature rules for the NGFW.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.ilp import ILPHeader, TLV
from ..core.packet import Payload
from ..core.service_module import ServiceModule, Verdict, WellKnownService
from .common import deliver_toward


@dataclass(frozen=True)
class Rule:
    """One ordered firewall rule; None fields match anything."""

    allow: bool
    src_prefix: Optional[str] = None
    dst_prefix: Optional[str] = None
    service_id: Optional[int] = None

    def matches(
        self, src: Optional[str], dst: Optional[str], service_id: int
    ) -> bool:
        if self.service_id is not None and self.service_id != service_id:
            return False
        if self.src_prefix is not None:
            if src is None:
                return False
            try:
                if ipaddress.IPv4Address(src) not in ipaddress.IPv4Network(
                    self.src_prefix
                ):
                    return False
            except ValueError:
                return False
        if self.dst_prefix is not None:
            if dst is None:
                return False
            try:
                if ipaddress.IPv4Address(dst) not in ipaddress.IPv4Network(
                    self.dst_prefix
                ):
                    return False
            except ValueError:
                return False
        return True


class RuleSet:
    """First-match-wins rule evaluation with a default policy."""

    def __init__(self, default_allow: bool = True) -> None:
        self.rules: list[Rule] = []
        self.default_allow = default_allow
        self.evaluations = 0
        self.denials = 0

    def add(self, rule: Rule) -> None:
        self.rules.append(rule)

    def check(self, src: Optional[str], dst: Optional[str], service_id: int) -> bool:
        self.evaluations += 1
        for rule in self.rules:
            if rule.matches(src, dst, service_id):
                if not rule.allow:
                    self.denials += 1
                return rule.allow
        if not self.default_allow:
            self.denials += 1
        return self.default_allow


class ImposedFirewall:
    """The pass-through-SN form: ``impose()`` on every packet (§3.2)."""

    NAME = "imposed-firewall"

    def __init__(self, rules: Optional[RuleSet] = None) -> None:
        self.rules = rules or RuleSet()

    def impose(
        self, header: ILPHeader, payload: Payload, inbound: bool
    ) -> Optional[ILPHeader]:
        src = header.get_str(TLV.SRC_HOST)
        dst = header.get_str(TLV.DEST_ADDR)
        if self.rules.check(src, dst, header.service_id):
            return header
        return None


class FirewallService(ServiceModule):
    """NGFW as an invocable service: address rules + payload signatures."""

    SERVICE_ID = WellKnownService.FIREWALL
    NAME = "firewall"
    VERSION = "1.0"

    def __init__(self, rules: Optional[RuleSet] = None) -> None:
        super().__init__()
        self.rules = rules or RuleSet()
        self.signature_rules: list[str] = []
        self.payload_blocks = 0

    def add_signature(self, name: str, pattern: bytes) -> None:
        """Register a payload-inspection signature (regex library)."""
        assert self.ctx is not None
        self.ctx.libs.get("regex").add_rule(name, pattern)
        self.signature_rules.append(name)

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        src = header.get_str(TLV.SRC_HOST)
        dst = header.get_str(TLV.DEST_ADDR)
        if not self.rules.check(src, dst, header.service_id):
            return Verdict.drop()
        if self.signature_rules and packet.payload.data:
            regex = self.ctx.libs.get("regex")
            for name in self.signature_rules:
                if regex.match(name, packet.payload.data):
                    self.payload_blocks += 1
                    return Verdict.drop()
        # Clean traffic: forward like basic delivery.
        return deliver_toward(self.ctx, header, packet.payload)

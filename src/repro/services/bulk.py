"""Bulk data delivery service (§6.2).

"Bulk data delivery is a form of multipoint delivery but focuses on large
data transfers rather than single packets or messages" — the paper is
building one for large scientific datasets (the ESnet use case).

Model: a publisher offers a named object; the service chunks it, stores
the chunks at the publisher's first-hop SN (off-path storage), and serves
receiver-driven fetches: receivers request the manifest, then pull chunks
(possibly out of order, with re-requests for losses). Chunk pulls from a
second receiver in the same edomain hit the SN's chunk store instead of
the origin — the multipoint aspect.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.ilp import ILPHeader, TLV
from ..core.packet import make_payload
from ..core.service_module import Emit, ServiceModule, Verdict, WellKnownService
from .common import deliver_toward

OP_OFFER = b"offer"  # publisher -> SN: one fragment of an offered object
OP_MANIFEST_REQ = b"manifest?"
OP_MANIFEST = b"manifest"
OP_CHUNK_REQ = b"chunk?"
OP_CHUNK = b"chunk"

TLV_OBJECT = TLV.TOPIC
TLV_CHUNK_INDEX = TLV.SEQUENCE
TLV_TOTAL_FRAGS = TLV.SERVICE_PRIVATE + 5

DEFAULT_CHUNK_SIZE = 1024
OFFER_FRAGMENT_SIZE = 1024  # keeps offer packets under the link MTU


@dataclass
class ObjectManifest:
    name: str
    size: int
    chunk_size: int
    n_chunks: int
    digest: str  # sha256 of the whole object

    def to_json(self) -> bytes:
        return json.dumps(self.__dict__).encode()

    @staticmethod
    def from_json(raw: bytes) -> "ObjectManifest":
        return ObjectManifest(**json.loads(raw.decode()))


class BulkDeliveryService(ServiceModule):
    """Chunked large-object distribution with edge chunk stores."""

    SERVICE_ID = WellKnownService.BULK_DELIVERY
    NAME = "bulk-delivery"
    VERSION = "1.0"

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        super().__init__()
        self.chunk_size = chunk_size
        self.manifests: dict[str, ObjectManifest] = {}
        #: (object, publisher) -> in-flight offer fragments
        self._pending_offers: dict[tuple[str, str], dict[int, bytes]] = {}
        self.chunk_hits = 0
        self.chunk_misses = 0

    # -- storage helpers (off-path tier, §3.1 datapath) ----------------------
    def _chunk_key(self, obj: str, index: int) -> str:
        return f"bulk/{obj}/chunk/{index}"

    def _store_object(self, name: str, data: bytes) -> ObjectManifest:
        assert self.ctx is not None
        n_chunks = max(1, math.ceil(len(data) / self.chunk_size))
        for i in range(n_chunks):
            chunk = data[i * self.chunk_size : (i + 1) * self.chunk_size]
            self.ctx.storage.put(self._chunk_key(name, i), chunk)
        manifest = ObjectManifest(
            name=name,
            size=len(data),
            chunk_size=self.chunk_size,
            n_chunks=n_chunks,
            digest=hashlib.sha256(data).hexdigest(),
        )
        self.manifests[name] = manifest
        self.ctx.storage.put(f"bulk/{name}/manifest", manifest.to_json())
        return manifest

    def _load_chunk(self, obj: str, index: int) -> Optional[bytes]:
        assert self.ctx is not None
        return self.ctx.storage.get(self._chunk_key(obj, index))

    # -- datapath ------------------------------------------------------------
    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        op = header.tlvs.get(TLV.SERVICE_OPTS, b"")
        obj = header.get_str(TLV_OBJECT)
        requester = header.get_str(TLV.SRC_HOST)
        if obj is None:
            return Verdict.drop()

        if op == OP_OFFER:
            if requester is None or self.ctx.peer_for_host(requester) is None:
                return Verdict.drop()  # offers only from local publishers
            index = header.get_u64(TLV_CHUNK_INDEX) or 0
            total = header.get_u64(TLV_TOTAL_FRAGS) or 1
            pending = self._pending_offers.setdefault((obj, requester), {})
            pending[index] = packet.payload.data
            if len(pending) == total:
                data = b"".join(pending[i] for i in range(total))
                self._store_object(obj, data)
                del self._pending_offers[(obj, requester)]
            return Verdict(dropped=False)

        if op == OP_MANIFEST_REQ:
            return self._serve_manifest(header, obj, requester, packet)

        if op == OP_CHUNK_REQ:
            return self._serve_chunk(header, obj, requester, packet)

        if op in (OP_MANIFEST, OP_CHUNK):
            # A response in flight: cache chunks as they pass (multipoint
            # reuse), then keep delivering toward the requester.
            if op == OP_CHUNK:
                index = header.get_u64(TLV_CHUNK_INDEX)
                if index is not None:
                    key = self._chunk_key(obj, index)
                    if self.ctx.storage.get(key) is None:
                        self.ctx.storage.put(key, packet.payload.data)
            elif op == OP_MANIFEST and obj not in self.manifests:
                try:
                    self.manifests[obj] = ObjectManifest.from_json(
                        packet.payload.data
                    )
                except (ValueError, TypeError, KeyError):
                    pass
            return deliver_toward(self.ctx, header, packet.payload)

        return Verdict.drop()

    def _reply(self, obj: str, requester: str, op: bytes, data: bytes, index: Optional[int] = None) -> Verdict:
        assert self.ctx is not None
        out = ILPHeader(service_id=self.SERVICE_ID, connection_id=0)
        out.set_str(TLV_OBJECT, obj)
        out.tlvs[TLV.SERVICE_OPTS] = op
        out.set_str(TLV.DEST_ADDR, requester)
        if index is not None:
            out.set_u64(TLV_CHUNK_INDEX, index)
        return deliver_toward(self.ctx, out, make_payload(data))

    def _serve_manifest(
        self, header: ILPHeader, obj: str, requester: Optional[str], packet: Any
    ) -> Verdict:
        assert self.ctx is not None
        if requester is None:
            return Verdict.drop()
        manifest = self.manifests.get(obj)
        if manifest is None:
            raw = self.ctx.storage.get(f"bulk/{obj}/manifest")
            if raw is not None:
                manifest = ObjectManifest.from_json(raw)
                self.manifests[obj] = manifest
        if manifest is not None:
            return self._reply(obj, requester, OP_MANIFEST, manifest.to_json())
        # Not held here: forward the request toward the publisher's SN.
        return deliver_toward(self.ctx, header, packet.payload)

    def _serve_chunk(
        self, header: ILPHeader, obj: str, requester: Optional[str], packet: Any
    ) -> Verdict:
        assert self.ctx is not None
        index = header.get_u64(TLV_CHUNK_INDEX)
        if requester is None or index is None:
            return Verdict.drop()
        chunk = self._load_chunk(obj, index)
        if chunk is not None:
            self.chunk_hits += 1
            return self._reply(obj, requester, OP_CHUNK, chunk, index=index)
        self.chunk_misses += 1
        return deliver_toward(self.ctx, header, packet.payload)


# -- host-side agent ----------------------------------------------------------

@dataclass
class BulkReceiver:
    """Receiver-driven fetch state machine for one object."""

    host: Any
    object_name: str
    origin_sn: str  # the publisher's first-hop SN address
    manifest: Optional[ObjectManifest] = None
    chunks: dict[int, bytes] = field(default_factory=dict)
    complete: bool = False
    data: Optional[bytes] = None

    def install(self) -> None:
        self.host.on_service_data(WellKnownService.BULK_DELIVERY, self._on_packet)

    def start(self) -> None:
        self._request(OP_MANIFEST_REQ)

    def _request(self, op: bytes, index: Optional[int] = None) -> None:
        tlvs = {
            TLV_OBJECT: self.object_name.encode(),
            TLV.SERVICE_OPTS: op,
            TLV.DEST_SN: self.origin_sn.encode(),
            TLV.DEST_ADDR: self.origin_sn.encode(),
        }
        if index is not None:
            tlvs[TLV_CHUNK_INDEX] = index.to_bytes(8, "big")
        conn = self.host.connect(
            WellKnownService.BULK_DELIVERY, allow_direct=False
        )
        self.host.send(conn, b"", extra_tlvs=tlvs)

    def _on_packet(self, conn_id: int, header: ILPHeader, payload: Any) -> None:
        op = header.tlvs.get(TLV.SERVICE_OPTS, b"")
        if header.get_str(TLV_OBJECT) != self.object_name:
            return
        if op == OP_MANIFEST and self.manifest is None:
            self.manifest = ObjectManifest.from_json(payload.data)
            for i in range(self.manifest.n_chunks):
                self._request(OP_CHUNK_REQ, index=i)
        elif op == OP_CHUNK:
            index = header.get_u64(TLV_CHUNK_INDEX)
            if index is not None:
                self.chunks[index] = payload.data
                self._check_complete()

    def missing_chunks(self) -> list[int]:
        if self.manifest is None:
            return []
        return [i for i in range(self.manifest.n_chunks) if i not in self.chunks]

    def rerequest_missing(self) -> int:
        """Loss recovery: re-pull any chunks that never arrived."""
        missing = self.missing_chunks()
        for i in missing:
            self._request(OP_CHUNK_REQ, index=i)
        return len(missing)

    def _check_complete(self) -> None:
        if self.manifest is None or self.complete:
            return
        if len(self.chunks) == self.manifest.n_chunks:
            data = b"".join(self.chunks[i] for i in range(self.manifest.n_chunks))
            if hashlib.sha256(data).hexdigest() == self.manifest.digest:
                self.data = data
                self.complete = True


def offer_object(host, name: str, data: bytes) -> None:
    """Publisher-side: hand an object to the first-hop SN for distribution.

    The object is shipped in MTU-sized offer fragments; the SN reassembles
    before chunking it into its store.
    """
    conn = host.connect(WellKnownService.BULK_DELIVERY, allow_direct=False)
    fragments = [
        data[i : i + OFFER_FRAGMENT_SIZE]
        for i in range(0, len(data), OFFER_FRAGMENT_SIZE)
    ] or [b""]
    for index, fragment in enumerate(fragments):
        host.send(
            conn,
            fragment,
            extra_tlvs={
                TLV_OBJECT: name.encode(),
                TLV.SERVICE_OPTS: OP_OFFER,
                TLV_CHUNK_INDEX: index.to_bytes(8, "big"),
                TLV_TOTAL_FRAGS: len(fragments).to_bytes(8, "big"),
            },
        )

"""Oblivious DNS (§6.2 privacy services).

The oDNS split decouples *who is asking* from *what is asked*:

* the client encrypts its query under a key shared with the resolver, so
  the oblivious proxy (a service module in an **enclave** at the client's
  first-hop SN) can route it but never read it;
* the proxy strips the client's identity and forwards the query under its
  own address, so the resolver sees the question but never the asker;
* answers retrace the path via the proxy's connection-id mapping.

Tests assert both halves of the privacy property: the resolver's observed
sources never include the client, and the proxy never holds query
plaintext.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.ilp import ILPHeader, TLV
from ..core.packet import Payload, make_payload
from ..core.service_module import Emit, ServiceModule, Verdict, WellKnownService
from .common import deliver_toward

OP_QUERY = b"query"
OP_ANSWER = b"answer"


class ODNSProxyService(ServiceModule):
    """The oblivious proxy. Runs in an enclave (REQUIRES_ENCLAVE)."""

    SERVICE_ID = WellKnownService.ODNS
    NAME = "odns-proxy"
    VERSION = "1.0"
    REQUIRES_ENCLAVE = True

    def __init__(self) -> None:
        super().__init__()
        #: connection id -> querying client address (the only linkage state)
        self._pending: dict[int, str] = {}
        self.queries_proxied = 0
        self.answers_returned = 0

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        op = header.tlvs.get(TLV.SERVICE_OPTS, b"")
        if op == OP_ANSWER:
            client = self._pending.pop(header.connection_id, None)
            if client is None:
                # Not our mapping: we are a relay SN on the answer's path.
                return deliver_toward(self.ctx, header, packet.payload)
            out = ILPHeader(
                service_id=self.SERVICE_ID, connection_id=header.connection_id
            )
            out.tlvs[TLV.SERVICE_OPTS] = OP_ANSWER
            out.set_str(TLV.DEST_ADDR, client)
            self.answers_returned += 1
            return deliver_toward(self.ctx, out, packet.payload)

        # A query from a local client: strip identity, forward obliviously.
        client = header.get_str(TLV.SRC_HOST)
        resolver = header.get_str(TLV.DEST_ADDR)
        if resolver is None:
            return Verdict.drop()
        if client is None or self.ctx.peer_for_host(client) is None:
            # Already proxied (identity stripped) — we are a relay hop or
            # the resolver's own SN: plain delivery toward the resolver.
            return deliver_toward(self.ctx, header, packet.payload)
        self._pending[header.connection_id] = client
        out = header.copy()
        out.tlvs.pop(TLV.SRC_HOST, None)  # the point of oDNS
        out.set_str(TLV.RETURN_PATH, self.ctx.node_address)
        out.tlvs[TLV.SERVICE_OPTS] = OP_QUERY
        self.queries_proxied += 1
        return deliver_toward(self.ctx, out, packet.payload)

    def checkpoint(self) -> dict[str, Any]:
        return {"pending": dict(self._pending)}

    def restore(self, state: dict[str, Any]) -> None:
        self._pending = {int(k): v for k, v in state.get("pending", {}).items()}


@dataclass
class ODNSResolver:
    """Host-side recursive resolver agent.

    Attach to a host with :meth:`install`; answers arrive at clients via
    their :class:`ODNSClient`.
    """

    host: Any
    zone: dict[str, str]
    shared_key: bytes
    observed_sources: list[Optional[str]] = field(default_factory=list)
    queries_served: int = 0

    def install(self) -> None:
        self.host.on_service_data(WellKnownService.ODNS, self._on_packet)

    def _on_packet(self, conn_id: int, header: ILPHeader, payload: Payload) -> None:
        if header.tlvs.get(TLV.SERVICE_OPTS) != OP_QUERY:
            return
        self.observed_sources.append(header.get_str(TLV.SRC_HOST))
        crypto = self.host_crypto()
        try:
            name = crypto.decrypt(self.shared_key, payload.data).decode()
        except Exception:
            return
        answer = self.zone.get(name, "0.0.0.0")
        blob = crypto.encrypt(self.shared_key, f"{name}={answer}".encode())
        self.queries_served += 1
        proxy_sn = header.get_str(TLV.RETURN_PATH)
        if proxy_sn is None:
            return
        reply = {
            TLV.SERVICE_OPTS: OP_ANSWER,
            TLV.DEST_SN: proxy_sn.encode(),
            # Address the proxy SN itself; its module intercepts by op.
            TLV.DEST_ADDR: proxy_sn.encode(),
        }
        conn = self.host.connect(
            WellKnownService.ODNS, dest_sn=proxy_sn, allow_direct=False
        )
        self.host.adopt_connection(conn, conn_id)  # keep the proxy's correlator
        self.host.send(conn, blob, extra_tlvs=reply, first=False)

    def host_crypto(self):
        from ..libs.cryptolib import CryptoLibrary

        if not hasattr(self, "_crypto"):
            self._crypto = CryptoLibrary()
        return self._crypto


@dataclass
class ODNSClient:
    """Host-side stub resolver agent."""

    host: Any
    resolver_addr: str
    shared_key: bytes
    answers: dict[str, str] = field(default_factory=dict)
    on_answer: Optional[Callable[[str, str], None]] = None

    def install(self) -> None:
        self.host.on_service_data(WellKnownService.ODNS, self._on_packet)

    def query(self, name: str) -> int:
        crypto = self._crypto_lib()
        blob = crypto.encrypt(self.shared_key, name.encode())
        conn = self.host.connect(
            WellKnownService.ODNS, dest_addr=self.resolver_addr, allow_direct=False
        )
        self.host.send(conn, blob)
        return conn.connection_id

    def _on_packet(self, conn_id: int, header: ILPHeader, payload: Payload) -> None:
        if header.tlvs.get(TLV.SERVICE_OPTS) != OP_ANSWER:
            return
        crypto = self._crypto_lib()
        try:
            text = crypto.decrypt(self.shared_key, payload.data).decode()
        except Exception:
            return
        name, _, answer = text.partition("=")
        self.answers[name] = answer
        if self.on_answer is not None:
            self.on_answer(name, answer)

    def _crypto_lib(self):
        from ..libs.cryptolib import CryptoLibrary

        if not hasattr(self, "_crypto"):
            self._crypto = CryptoLibrary()
        return self._crypto

"""Geo-distributed message queue service (§6.2 specialty services).

The Cloudflare-Queues/Kafka-at-the-edge analog: named queues live at a
*home SN* (chosen by consistent hashing over queue names so any SN can
locate a queue without coordination), producers append from anywhere, and
consumers receive with at-least-once semantics (explicit acks, redelivery
of unacked messages). Each queue keeps a bounded log plus per-consumer
cursors, and replicates appends to a standby SN for failover (§3.3).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.ilp import Flags, ILPHeader, TLV
from ..core.packet import Payload, make_payload
from ..core.service_module import Emit, ServiceModule, Verdict, WellKnownService
from .common import deliver_toward

OP_APPEND = b"append"
OP_SUBSCRIBE = b"subscribe"
OP_ACK = b"ack"
OP_DELIVER = b"deliver"
OP_REPLICATE = b"replicate"

TLV_QUEUE = TLV.TOPIC
TLV_OFFSET = TLV.SEQUENCE


def queue_home(queue: str, sn_addresses: list[str]) -> str:
    """Rendezvous (highest-random-weight) hash: queue -> home SN."""
    if not sn_addresses:
        raise ValueError("no SNs to home queues on")
    return max(
        sn_addresses,
        key=lambda sn: hashlib.sha256(f"{queue}|{sn}".encode()).digest(),
    )


@dataclass
class QueueState:
    """One queue's log and consumer cursors at its home SN."""

    name: str
    log: list[bytes] = field(default_factory=list)
    #: consumer host -> next offset to deliver
    cursors: dict[str, int] = field(default_factory=dict)
    #: consumer host -> offsets delivered but not yet acked
    unacked: dict[str, set[int]] = field(default_factory=dict)
    max_log: int = 4096

    def append(self, message: bytes) -> int:
        self.log.append(message)
        if len(self.log) > self.max_log:
            # Bounded log: drop oldest; cursors below the floor clamp up.
            overflow = len(self.log) - self.max_log
            del self.log[:overflow]
            for consumer in self.cursors:
                self.cursors[consumer] = max(0, self.cursors[consumer] - overflow)
        return len(self.log) - 1


class MessageQueueService(ServiceModule):
    """The queue service module; every SN runs it, queues home by hash."""

    SERVICE_ID = WellKnownService.MSG_QUEUE
    NAME = "msgqueue"
    VERSION = "1.0"

    def __init__(self, standby_sn: Optional[str] = None) -> None:
        super().__init__()
        self.queues: dict[str, QueueState] = {}
        self.standby_sn = standby_sn
        self.appends = 0
        self.deliveries = 0
        self.redeliveries = 0

    # -- routing helpers -------------------------------------------------
    def _home_for(self, queue: str) -> str:
        assert self.ctx is not None
        control = self.ctx.control_plane()
        sn_addresses = sorted(control.lookup.service_nodes("msgqueue"))
        if not sn_addresses:
            return self.ctx.node_address
        return queue_home(queue, sn_addresses)

    def on_attach(self) -> None:
        assert self.ctx is not None
        control = self.ctx.control_plane()
        control.lookup.register_service_node("msgqueue", self.ctx.node_address)

    def _forward_to_home(self, header: ILPHeader, packet: Any, home: str) -> Verdict:
        out = header.copy()
        out.set_str(TLV.DEST_SN, home)
        out.set_str(TLV.DEST_ADDR, home)
        assert self.ctx is not None
        return deliver_toward(self.ctx, out, packet.payload)

    # -- datapath ------------------------------------------------------------
    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        queue = header.get_str(TLV_QUEUE)
        op = header.tlvs.get(TLV.SERVICE_OPTS, OP_APPEND)
        if queue is None:
            return Verdict.drop()
        if op == OP_DELIVER:
            # A delivery in transit from a queue home to a consumer: plain
            # forwarding, never re-homed.
            return deliver_toward(self.ctx, header, packet.payload)
        home = self._home_for(queue)
        if op == OP_REPLICATE:
            # Standby copy of an append.
            state = self.queues.setdefault(queue, QueueState(queue))
            state.append(packet.payload.data)
            return Verdict(dropped=False)
        if home != self.ctx.node_address:
            return self._forward_to_home(header, packet, home)
        if op == OP_APPEND:
            return self._handle_append(queue, header, packet)
        if op == OP_ACK:
            return self._handle_ack(queue, header)
        return Verdict.drop()

    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        queue = header.get_str(TLV_QUEUE)
        op = header.tlvs.get(TLV.SERVICE_OPTS, b"")
        consumer = header.get_str(TLV.SRC_HOST)
        if queue is None or consumer is None:
            return Verdict.drop()
        home = self._home_for(queue)
        if home != self.ctx.node_address:
            out = header.copy()
            out.set_str(TLV.DEST_SN, home)
            out.set_str(TLV.DEST_ADDR, home)
            return deliver_toward(self.ctx, out, packet.payload)
        if op == OP_SUBSCRIBE:
            state = self.queues.setdefault(queue, QueueState(queue))
            state.cursors.setdefault(consumer, 0)
            state.unacked.setdefault(consumer, set())
            return self._drain_to(queue, consumer)
        return Verdict.drop()

    # -- queue operations --------------------------------------------------
    def _handle_append(self, queue: str, header: ILPHeader, packet: Any) -> Verdict:
        state = self.queues.setdefault(queue, QueueState(queue))
        state.append(packet.payload.data)
        self.appends += 1
        verdict = Verdict(dropped=False)
        # Replicate to standby before delivering (§3.3 standby replication).
        if self.standby_sn is not None and self.standby_sn != self.ctx.node_address:
            rep = ILPHeader(
                service_id=self.SERVICE_ID, connection_id=header.connection_id
            )
            rep.set_str(TLV_QUEUE, queue)
            rep.tlvs[TLV.SERVICE_OPTS] = OP_REPLICATE
            rep.set_str(TLV.DEST_SN, self.standby_sn)
            rep.set_str(TLV.DEST_ADDR, self.standby_sn)
            rep_verdict = deliver_toward(self.ctx, rep, packet.payload)
            verdict.emits.extend(rep_verdict.emits)
        for consumer in list(state.cursors):
            drained = self._drain_to(queue, consumer)
            verdict.emits.extend(drained.emits)
        return verdict

    def _handle_ack(self, queue: str, header: ILPHeader) -> Verdict:
        state = self.queues.get(queue)
        consumer = header.get_str(TLV.SRC_HOST)
        offset = header.get_u64(TLV_OFFSET)
        if state is None or consumer is None or offset is None:
            return Verdict.drop()
        state.unacked.get(consumer, set()).discard(offset)
        return Verdict(dropped=False)

    def _drain_to(self, queue: str, consumer: str) -> Verdict:
        """Deliver every message from the consumer's cursor onward."""
        assert self.ctx is not None
        state = self.queues[queue]
        emits: list[Emit] = []
        cursor = state.cursors.get(consumer, 0)
        while cursor < len(state.log):
            emits.extend(self._delivery_emits(queue, consumer, cursor))
            state.unacked.setdefault(consumer, set()).add(cursor)
            cursor += 1
            self.deliveries += 1
        state.cursors[consumer] = cursor
        return Verdict(emits=emits)

    def start_redelivery_timer(self, queue: str, interval: float = 5.0) -> None:
        """At-least-once enforcement: re-send unacked messages periodically."""
        assert self.ctx is not None

        def tick() -> None:
            if queue in self.queues:
                self.redeliver_unacked(queue)
            self.ctx.schedule(interval, tick)

        self.ctx.schedule(interval, tick)

    def redeliver_unacked(self, queue: str) -> int:
        """Timer-driven redelivery of unacked messages (at-least-once)."""
        assert self.ctx is not None
        state = self.queues.get(queue)
        if state is None:
            return 0
        count = 0
        for consumer, offsets in state.unacked.items():
            for offset in sorted(offsets):
                if offset < len(state.log):
                    for emit in self._delivery_emits(queue, consumer, offset):
                        self.ctx.send_ilp(emit.peer, emit.header, emit.payload)
                    count += 1
                    self.redeliveries += 1
        return count

    def _delivery_emits(self, queue: str, consumer: str, offset: int) -> list[Emit]:
        assert self.ctx is not None
        state = self.queues[queue]
        out = ILPHeader(service_id=self.SERVICE_ID, connection_id=0)
        out.set_str(TLV_QUEUE, queue)
        out.tlvs[TLV.SERVICE_OPTS] = OP_DELIVER
        out.set_u64(TLV_OFFSET, offset)
        out.set_str(TLV.DEST_ADDR, consumer)
        verdict = deliver_toward(self.ctx, out, make_payload(state.log[offset]))
        return verdict.emits

    # -- fault tolerance -------------------------------------------------
    def checkpoint(self) -> dict[str, Any]:
        return {
            "queues": {
                name: {
                    "log": list(state.log),
                    "cursors": dict(state.cursors),
                    "unacked": {c: sorted(o) for c, o in state.unacked.items()},
                }
                for name, state in self.queues.items()
            }
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.queues = {}
        for name, q in state.get("queues", {}).items():
            restored = QueueState(name)
            restored.log = list(q.get("log", []))
            restored.cursors = dict(q.get("cursors", {}))
            restored.unacked = {
                c: set(o) for c, o in q.get("unacked", {}).items()
            }
            self.queues[name] = restored


# -- host-side helpers ------------------------------------------------------

def produce(host, queue: str, message: bytes):
    conn = host.connect(
        WellKnownService.MSG_QUEUE,
        tlvs={TLV_QUEUE: queue.encode(), TLV.SERVICE_OPTS: OP_APPEND},
        allow_direct=False,
    )
    host.send(conn, message)
    return conn


def subscribe(host, queue: str) -> bool:
    return host.send_control(
        WellKnownService.MSG_QUEUE,
        {TLV_QUEUE: queue.encode(), TLV.SERVICE_OPTS: OP_SUBSCRIBE},
    )


def ack(host, queue: str, offset: int) -> bool:
    conn = host.connect(
        WellKnownService.MSG_QUEUE,
        tlvs={
            TLV_QUEUE: queue.encode(),
            TLV.SERVICE_OPTS: OP_ACK,
            TLV_OFFSET: offset.to_bytes(8, "big"),
        },
        allow_direct=False,
    )
    return host.send(conn, b"")

"""The null service — the Table 1 microbenchmark service.

Appendix C: "the packet arrives on an ingress pipe to the pipe-terminus,
then is sent to a service module (via IPC) which immediately returns the
packet to the pipe-terminus, which then sends it to an egress pipe."

The module does no work beyond echoing a forward verdict. It deliberately
installs **no** decision-cache entry, so every packet takes the slow path —
that is exactly what the null-service row of Table 1 measures.
"""

from __future__ import annotations

from typing import Any

from ..core.ilp import ILPHeader, TLV
from ..core.service_module import ServiceModule, Verdict, WellKnownService


class NullService(ServiceModule):
    """Immediately return every packet toward its destination."""

    SERVICE_ID = WellKnownService.NULL
    NAME = "null"
    VERSION = "1.0"

    def __init__(self) -> None:
        super().__init__()
        self.packets_seen = 0

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        self.packets_seen += 1
        dest = header.get_str(TLV.DEST_ADDR)
        if dest is None:
            return Verdict.drop()
        assert self.ctx is not None
        local = self.ctx.peer_for_host(dest)
        if local is not None:
            return Verdict.forward(local, header, packet.payload)
        dest_sn = header.get_str(TLV.DEST_SN)
        if dest_sn is None:
            return Verdict.drop()
        next_hop = self.ctx.next_hop_for_sn(dest_sn)
        if next_hop is None:
            return Verdict.drop()
        return Verdict.forward(next_hop, header, packet.payload)

    def checkpoint(self) -> dict[str, Any]:
        return {"packets_seen": self.packets_seen}

    def restore(self, state: dict[str, Any]) -> None:
        self.packets_seen = state.get("packets_seen", 0)

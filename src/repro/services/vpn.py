"""Generic VPN service (§6.2).

"The InterEdge could easily support a generic VPN service that provides a
customer with a publicly reachable address, redirects incoming traffic to
a customer-specified authentication service, and only allows in traffic
that has been duly authenticated."

Implementation: the customer registers a *public address* with the VPN
service at an SN; unauthenticated connections to that address are
redirected to the configured authenticator (another host), which — on
success — mints an HMAC token bound to the source. Traffic carrying a
valid token in its AUTH TLV is admitted and forwarded to the customer's
real (inner) host.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
from dataclasses import dataclass
from typing import Any, Optional

from ..core import crypto
from ..core.ilp import ILPHeader, TLV
from ..core.service_module import ServiceModule, Verdict, WellKnownService
from .common import deliver_toward

TLV_AUTH_TOKEN = TLV.SERVICE_PRIVATE + 3
OP_REGISTER = b"register"
OP_REDIRECTED = b"redirected"


@dataclass
class VPNEndpoint:
    public_address: str
    inner_host: str
    authenticator: str  # host address of the auth service
    token_key: bytes


def mint_token(token_key: bytes, source: str) -> bytes:
    """The authenticator's token for an approved source."""
    return hmac_mod.new(token_key, b"vpn|" + source.encode(), hashlib.sha256).digest()


class VPNService(ServiceModule):
    """Authentication-gated public ingress."""

    SERVICE_ID = WellKnownService.VPN
    NAME = "vpn"
    VERSION = "1.0"

    def __init__(self) -> None:
        super().__init__()
        self.endpoints: dict[str, VPNEndpoint] = {}
        self.redirected = 0
        self.admitted = 0
        self.rejected = 0

    def register_endpoint(self, endpoint: VPNEndpoint) -> None:
        self.endpoints[endpoint.public_address] = endpoint

    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        # Customer registers a public endpoint out of band.
        op = header.tlvs.get(TLV.SERVICE_OPTS, b"")
        if op != OP_REGISTER:
            return Verdict.drop()
        owner = header.get_str(TLV.SRC_HOST)
        public = header.get_str(TLV.DEST_ADDR)
        authenticator = header.get_str(TLV.RETURN_PATH)
        key = header.tlvs.get(TLV.IDENTITY)
        if None in (owner, public, authenticator) or key is None:
            return Verdict.drop()
        self.register_endpoint(
            VPNEndpoint(
                public_address=public,
                inner_host=owner,
                authenticator=authenticator,
                token_key=key,
            )
        )
        return Verdict(dropped=False)

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        dest = header.get_str(TLV.DEST_ADDR)
        source = header.get_str(TLV.SRC_HOST)
        if dest is None:
            return Verdict.drop()
        endpoint = self.endpoints.get(dest)
        if endpoint is None:
            # Not one of our public addresses: plain delivery.
            return deliver_toward(self.ctx, header, packet.payload)
        if source is None:
            self.rejected += 1
            return Verdict.drop()
        token = header.tlvs.get(TLV_AUTH_TOKEN)
        if token is not None and hmac_mod.compare_digest(
            token, mint_token(endpoint.token_key, source)
        ):
            # Authenticated: rewrite toward the inner host.
            self.admitted += 1
            out = header.copy()
            out.set_str(TLV.DEST_ADDR, endpoint.inner_host)
            out.tlvs.pop(TLV.DEST_SN, None)
            return deliver_toward(self.ctx, out, packet.payload)
        # Unauthenticated: redirect to the authenticator.
        self.redirected += 1
        out = header.copy()
        out.set_str(TLV.DEST_ADDR, endpoint.authenticator)
        out.tlvs.pop(TLV.DEST_SN, None)
        out.tlvs[TLV.SERVICE_OPTS] = OP_REDIRECTED
        out.set_str(TLV.RETURN_PATH, dest)  # so the authenticator knows why
        return deliver_toward(self.ctx, out, packet.payload)


@dataclass
class VPNAuthenticator:
    """Host-side authentication service: approves sources by credential."""

    host: Any
    token_key: bytes
    credentials: set[str]  # accepted passwords
    approved: list[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.approved is None:
            self.approved = []

    def install(self) -> None:
        self.host.on_service_data(WellKnownService.VPN, self._on_packet)

    def _on_packet(self, conn_id: int, header: ILPHeader, payload: Any) -> None:
        if header.tlvs.get(TLV.SERVICE_OPTS) != OP_REDIRECTED:
            return
        source = header.get_str(TLV.SRC_HOST)
        credential = payload.data.decode(errors="replace")
        if source is None or credential not in self.credentials:
            return
        self.approved.append(source)
        token = mint_token(self.token_key, source)
        conn = self.host.connect(
            WellKnownService.IP_DELIVERY, dest_addr=source, allow_direct=False
        )
        self.host.send(conn, b"VPN-TOKEN:" + token.hex().encode())


def register_vpn_endpoint(
    host, public_address: str, authenticator: str, token_key: bytes
) -> bool:
    """Customer-side: claim a public address gated by an authenticator."""
    return host.send_control(
        WellKnownService.VPN,
        {
            TLV.SERVICE_OPTS: OP_REGISTER,
            TLV.DEST_ADDR: public_address.encode(),
            TLV.RETURN_PATH: authenticator.encode(),
            TLV.IDENTITY: token_key,
        },
    )

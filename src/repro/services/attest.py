"""Attestation service (§3.3 "basic primitives (such as pub/sub or
attestation)", §6.3).

Lets a client verify what software stack its first-hop SN is running
before trusting it with a privacy-sensitive service: the client sends a
nonce, the SN's service module returns a TPM quote over the PCRs covering
the boot chain, execution environment, loaded services, and enclaves,
plus the extend log needed for verification.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.attestation import AttestationVerifier, Quote
from ..core.ilp import Flags, ILPHeader, TLV
from ..core.packet import Payload, make_payload
from ..core.service_module import Emit, ServiceModule, Verdict, WellKnownService

OP_CHALLENGE = b"challenge"
OP_QUOTE = b"quote"


class AttestationService(ServiceModule):
    """Quote-on-demand for the local SN."""

    SERVICE_ID = WellKnownService.ATTESTATION
    NAME = "attestation"
    VERSION = "1.0"

    def __init__(self) -> None:
        super().__init__()
        self.quotes_issued = 0

    def handle_control(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        if header.tlvs.get(TLV.SERVICE_OPTS, b"") != OP_CHALLENGE:
            return Verdict.drop()
        nonce = header.tlvs.get(TLV.SERVICE_PRIVATE)
        client = header.get_str(TLV.SRC_HOST)
        if nonce is None or client is None:
            return Verdict.drop()
        tpm = self.ctx.node.env.tpm
        quote = tpm.quote(nonce)
        blob = pickle.dumps(
            {"quote": quote, "extend_log": list(tpm.extend_log)},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self.quotes_issued += 1
        reply = ILPHeader(
            service_id=self.SERVICE_ID,
            connection_id=header.connection_id,
            flags=Flags.CONTROL,
        )
        reply.tlvs[TLV.SERVICE_OPTS] = OP_QUOTE
        return Verdict(emits=[Emit(client, reply, make_payload(blob))])

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        return Verdict.drop()


@dataclass
class AttestationClient:
    """Host-side agent: challenge the first-hop SN and verify its quote."""

    host: Any
    verifier: AttestationVerifier
    results: list[bool] = field(default_factory=list)
    on_result: Optional[Callable[[bool], None]] = None
    _nonce: bytes = b""

    @property
    def challenge_nonce(self) -> bytes:
        """The nonce of the outstanding challenge (empty when none)."""
        return self._nonce

    @challenge_nonce.setter
    def challenge_nonce(self, nonce: bytes) -> None:
        self._nonce = nonce

    def install(self) -> None:
        self.host.on_service_control(
            WellKnownService.ATTESTATION, self._on_packet
        )

    def challenge(self, nonce: bytes) -> bool:
        self._nonce = nonce
        return self.host.send_control(
            WellKnownService.ATTESTATION,
            {TLV.SERVICE_OPTS: OP_CHALLENGE, TLV.SERVICE_PRIVATE: nonce},
        )

    def _on_packet(self, conn_id: int, header: ILPHeader, payload: Payload) -> None:
        if header.tlvs.get(TLV.SERVICE_OPTS) != OP_QUOTE:
            return
        try:
            data = pickle.loads(payload.data)
            quote: Quote = data["quote"]
            extend_log = data["extend_log"]
        except Exception:
            self._record(False)
            return
        self._record(
            self.verifier.verify(quote, self._nonce, extend_log)
        )

    def _record(self, ok: bool) -> None:
        self.results.append(ok)
        if self.on_result is not None:
            self.on_result(ok)

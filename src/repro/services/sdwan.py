"""SD-WAN service: enterprise overlay path selection (§1.2, §5).

§5: "When an enterprise has arranged for an SD-WAN service, the associated
SN for outgoing packets goes through the enterprise's first-hop SN". The
service picks, per destination site, the best overlay path among candidate
next-hop SNs, using operator-configured link metrics (latency/loss scores),
and fails over when a path is marked down.

Deployed either as an invocable service module or as an imposed module on
an enterprise pass-through SN (both shapes share the path selector).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.decision_cache import CacheKey, Decision
from ..core.ilp import Flags, ILPHeader, TLV
from ..core.packet import Payload
from ..core.service_module import ServiceModule, Verdict, WellKnownService
from .common import next_peer_toward


@dataclass
class PathMetric:
    """Operator-configured quality of one candidate path."""

    via_sn: str
    latency_ms: float
    loss_pct: float = 0.0
    up: bool = True

    @property
    def score(self) -> float:
        """Lower is better; loss dominates latency (1% loss ≈ 50 ms)."""
        return self.latency_ms + self.loss_pct * 50.0


@dataclass
class SitePolicy:
    """Candidate paths for one destination site (a host prefix or SN)."""

    site: str  # destination SN address
    paths: list[PathMetric] = field(default_factory=list)

    def best(self) -> Optional[PathMetric]:
        alive = [p for p in self.paths if p.up]
        if not alive:
            return None
        return min(alive, key=lambda p: p.score)


class PathSelector:
    """The SD-WAN brain: site → best overlay path, with failover."""

    def __init__(self) -> None:
        self._sites: dict[str, SitePolicy] = {}
        self.failovers = 0

    def configure_site(self, site: str, paths: list[PathMetric]) -> None:
        self._sites[site] = SitePolicy(site=site, paths=paths)

    def site_for(self, site: str) -> Optional[SitePolicy]:
        return self._sites.get(site)

    def select(self, site: str) -> Optional[str]:
        policy = self._sites.get(site)
        if policy is None:
            return None
        best = policy.best()
        return best.via_sn if best else None

    def mark_down(self, site: str, via_sn: str) -> None:
        policy = self._sites.get(site)
        if policy is None:
            return
        for path in policy.paths:
            if path.via_sn == via_sn and path.up:
                path.up = False
                self.failovers += 1

    def mark_up(self, site: str, via_sn: str) -> None:
        policy = self._sites.get(site)
        if policy is None:
            return
        for path in policy.paths:
            if path.via_sn == via_sn:
                path.up = True


class SDWANService(ServiceModule):
    """SD-WAN as an invocable InterEdge service."""

    SERVICE_ID = WellKnownService.SDWAN
    NAME = "sdwan"
    VERSION = "1.0"

    def __init__(self, selector: Optional[PathSelector] = None) -> None:
        super().__init__()
        self.selector = selector or PathSelector()
        self.path_decisions = 0

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        if header.flags & Flags.LAST:
            self.ctx.invalidate_connection(header.connection_id)
            return Verdict.drop()
        dest_sn = header.get_str(TLV.DEST_SN)
        # Steering happens only at the first-hop SN of the sending host
        # (§5: the enterprise's SD-WAN applies at *its* SN); transit SNs
        # just deliver, otherwise every hop would re-steer and loop.
        from_local_host = self.ctx.peer_for_host(packet.l3.src) is not None
        via = (
            self.selector.select(dest_sn) if dest_sn and from_local_host else None
        )
        if via is not None:
            peer = self.ctx.next_hop_for_sn(via)
            self.path_decisions += 1
        else:
            # No SD-WAN policy for this site: ordinary delivery.
            peer = next_peer_toward(self.ctx, header)
        if peer is None:
            return Verdict.drop()
        key = CacheKey(
            src=packet.l3.src,
            service_id=self.SERVICE_ID,
            connection_id=header.connection_id,
        )
        verdict = Verdict.forward(peer, header, packet.payload)
        verdict.installs.append((key, Decision.forward(peer)))
        return verdict

    def fail_path(self, site: str, via_sn: str) -> None:
        """Operator/probe signal: a path died. Invalidate affected flows.

        Evicting the whole cache is safe (Appendix B) and simpler than
        tracking which connections used the path; subsequent packets punt
        and re-select.
        """
        self.selector.mark_down(site, via_sn)
        assert self.ctx is not None
        self.ctx.node.cache.evict_random_fraction(1.0)


class ImposedSDWAN:
    """SD-WAN as an operator-imposed module on a pass-through SN (§3.2)."""

    NAME = "imposed-sdwan"

    def __init__(self, selector: PathSelector) -> None:
        self.selector = selector

    def impose(
        self, header: ILPHeader, payload: Payload, inbound: bool
    ) -> Optional[ILPHeader]:
        if inbound:
            return header
        dest_sn = header.get_str(TLV.DEST_SN)
        if dest_sn is None:
            return header
        via = self.selector.select(dest_sn)
        if via is None:
            return header
        # Steer by rewriting the destination SN to the chosen overlay hop;
        # that hop's delivery service completes the path.
        out = header.copy()
        out.set_str(TLV.DEST_SN, via)
        return out

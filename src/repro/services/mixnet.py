"""ToR-like mixnet service (§6.2).

A generalization of private relay to arbitrary depth: the client picks a
circuit of k SNs and onion-wraps the message so each mix peels exactly one
layer, learning only its predecessor and successor. Mixes run in enclaves
and add a small deterministic-random forwarding delay (batching stand-in),
so timing correlation across the circuit is blunted.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass
from typing import Any, Optional

from ..core.ilp import ILPHeader, TLV
from ..core.packet import Payload, make_payload
from ..core.service_module import Emit, ServiceModule, Verdict, WellKnownService
from ..libs.cryptolib import CryptoLibrary
from .common import deliver_toward


def mix_key(sn_address: str) -> bytes:
    """A mix's published wrapping key (deterministic for simulation)."""
    from ..core import crypto

    return crypto.derive_key(
        crypto.derive_key(b"mixnet-root-secret".ljust(16, b"\x00"), "mix"),
        "key",
        sn_address.encode(),
    )


def build_circuit(
    crypto_lib: CryptoLibrary, circuit: list[str], dest_host: str, data: bytes
) -> bytes:
    """Onion-wrap ``data`` for a circuit of SN addresses (entry first)."""
    if not circuit:
        raise ValueError("circuit needs at least one mix")
    # Innermost layer: the exit's instruction to deliver to the host.
    blob = crypto_lib.encrypt(
        mix_key(circuit[-1]),
        json.dumps({"deliver": dest_host, "data": data.hex()}).encode(),
    )
    # Wrap outward: each earlier mix learns only the next mix.
    for i in range(len(circuit) - 2, -1, -1):
        blob = crypto_lib.encrypt(
            mix_key(circuit[i]),
            json.dumps({"next": circuit[i + 1], "blob": blob.hex()}).encode(),
        )
    return blob


class MixnetService(ServiceModule):
    """One mix node; every participating SN runs the same module."""

    SERVICE_ID = WellKnownService.MIXNET
    NAME = "mixnet"
    VERSION = "1.0"
    REQUIRES_ENCLAVE = True

    #: max extra per-hop delay in seconds (deterministic rng per node)
    MIX_DELAY = 0.002

    def __init__(self) -> None:
        super().__init__()
        self._crypto = CryptoLibrary()
        self._rng = random.Random(0xA11CE)
        self.peeled = 0
        self.delivered = 0

    def on_attach(self) -> None:
        assert self.ctx is not None
        # Stable per-node seed: builtin hash() is PYTHONHASHSEED-randomized,
        # which would make mix delays differ between otherwise identical runs.
        self._rng = random.Random(zlib.crc32(self.ctx.node_address.encode()))

    def handle_packet(self, header: ILPHeader, packet: Any) -> Verdict:
        assert self.ctx is not None
        try:
            peeled = json.loads(
                self._crypto.decrypt(
                    mix_key(self.ctx.node_address), packet.payload.data
                ).decode()
            )
        except Exception:
            # Not a layer for us: relay toward DEST_ADDR/DEST_SN like any
            # other service (covers both border relaying and the final hop
            # to a locally associated host).
            return deliver_toward(self.ctx, header, packet.payload)

        self.peeled += 1
        out = ILPHeader(
            service_id=self.SERVICE_ID, connection_id=header.connection_id
        )
        if "next" in peeled:
            out.set_str(TLV.DEST_SN, peeled["next"])
            out.set_str(TLV.DEST_ADDR, peeled["next"])
            payload = make_payload(bytes.fromhex(peeled["blob"]))
        elif "deliver" in peeled:
            out.set_str(TLV.DEST_ADDR, peeled["deliver"])
            payload = make_payload(bytes.fromhex(peeled["data"]))
            self.delivered += 1
        else:
            return Verdict.drop()

        verdict = deliver_toward(self.ctx, out, payload)
        if verdict.emits and self.MIX_DELAY > 0:
            # Defer the emission by a mixing delay: re-emit via the context
            # scheduler instead of returning it synchronously.
            emits = verdict.emits
            verdict = Verdict()
            delay = self._rng.uniform(0, self.MIX_DELAY)
            ctx = self.ctx

            def _later(emits=emits) -> None:
                for emit in emits:
                    ctx.send_ilp(emit.peer, emit.header, emit.payload)

            ctx.schedule(delay, _later)
        return verdict


def send_via_mixnet(
    host,
    circuit: list[str],
    dest_host: str,
    data: bytes,
    crypto_lib: Optional[CryptoLibrary] = None,
):
    """Client-side helper: send one message through a mix circuit."""
    lib = crypto_lib or CryptoLibrary()
    blob = build_circuit(lib, circuit, dest_host, data)
    conn = host.connect(
        WellKnownService.MIXNET,
        dest_addr=circuit[0],
        dest_sn=circuit[0],
        allow_direct=False,
    )
    host.send(conn, blob)
    return conn

"""Neutrality auditing (§5).

The InterEdge's neutrality rule: an IESP may vary prices by service type,
volume, and location — never by customer identity — and may not refuse
service selectively. The auditor checks a set of observed invoices and
service decisions against those rules and reports violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .rates import Invoice, RateCard


@dataclass(frozen=True)
class Violation:
    kind: str  # "price-discrimination" | "off-card-price" | "service-denial"
    detail: str


@dataclass
class ServiceDecision:
    """An observed accept/deny of a customer's service request."""

    customer: str
    service_id: int
    region: str
    accepted: bool
    reason: str = ""


class NeutralityAuditor:
    """Checks an IESP's observed behavior against its published card."""

    def __init__(self, card: RateCard, tolerance: float = 1e-9) -> None:
        self.card = card
        self.tolerance = tolerance

    def audit_invoices(self, invoices: list[Invoice]) -> list[Violation]:
        violations: list[Violation] = []
        # Rule 1: every invoice must match the published card exactly.
        for inv in invoices:
            expected = self.card.price(inv.service_id, inv.region, inv.volume_gb)
            if abs(inv.amount - expected) > self.tolerance:
                violations.append(
                    Violation(
                        kind="off-card-price",
                        detail=(
                            f"{inv.customer}: billed {inv.amount:.4f} for "
                            f"service {inv.service_id} ({inv.volume_gb} GB in "
                            f"{inv.region}), card says {expected:.4f}"
                        ),
                    )
                )
        # Rule 2: identical (service, region, volume) must cost the same for
        # every customer — detects discrimination even if the card itself
        # was quietly edited between invoices.
        seen: dict[tuple[int, str, float], tuple[str, float]] = {}
        for inv in invoices:
            key = (inv.service_id, inv.region, inv.volume_gb)
            if key in seen:
                other_customer, other_amount = seen[key]
                if (
                    abs(inv.amount - other_amount) > self.tolerance
                    and inv.customer != other_customer
                ):
                    violations.append(
                        Violation(
                            kind="price-discrimination",
                            detail=(
                                f"{inv.customer} pays {inv.amount:.4f} but "
                                f"{other_customer} pays {other_amount:.4f} for "
                                f"identical usage {key}"
                            ),
                        )
                    )
            else:
                seen[key] = (inv.customer, inv.amount)
        return violations

    def audit_decisions(self, decisions: list[ServiceDecision]) -> list[Violation]:
        """Denying a customer a (service, region) that was accepted for
        another customer is a neutrality violation."""
        accepted: dict[tuple[int, str], str] = {}
        for dec in decisions:
            if dec.accepted:
                accepted[(dec.service_id, dec.region)] = dec.customer
        violations = []
        for dec in decisions:
            if dec.accepted:
                continue
            key = (dec.service_id, dec.region)
            if key in accepted:
                violations.append(
                    Violation(
                        kind="service-denial",
                        detail=(
                            f"{dec.customer} denied service {dec.service_id} in "
                            f"{dec.region} (reason: {dec.reason!r}) while "
                            f"{accepted[key]} is served"
                        ),
                    )
                )
        return violations

    def audit(
        self,
        invoices: list[Invoice],
        decisions: Optional[list[ServiceDecision]] = None,
    ) -> list[Violation]:
        violations = self.audit_invoices(invoices)
        if decisions:
            violations.extend(self.audit_decisions(decisions))
        return violations

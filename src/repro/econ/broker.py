"""Coverage brokers (§5).

With standard rates published openly, brokers can stitch together coverage
from several smaller IESPs on a customer's behalf — the paper's mechanism
for letting collections of small IESPs compete with global providers.

A broker takes a set of regions a customer wants covered plus every IESP's
published card + coverage map, and solves for the cheapest assignment of
one IESP per region (a weighted set-cover special case that is exact here
because coverage is per-region independent once rates are public).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .rates import RateCard, RateError


class BrokerError(Exception):
    """Raised when requested coverage is unachievable."""


@dataclass
class IESPOffer:
    """One IESP as visible to brokers: published card + covered regions."""

    name: str
    card: RateCard
    regions: set[str]

    def __post_init__(self) -> None:
        if not self.card.published:
            raise BrokerError(f"{self.name}'s rate card is not published")


@dataclass
class CoveragePlan:
    """The broker's stitched result."""

    assignments: dict[str, str]  # region -> IESP name
    total_monthly: float
    per_region: dict[str, float]

    @property
    def iesps_used(self) -> set[str]:
        return set(self.assignments.values())


class CoverageBroker:
    """Stitches multi-IESP coverage from published rates."""

    def __init__(self, offers: list[IESPOffer]) -> None:
        self.offers = list(offers)

    def plan(
        self, service_id: int, regions: list[str], volume_gb_per_region: float
    ) -> CoveragePlan:
        """Cheapest per-region assignment across all offering IESPs.

        Raises:
            BrokerError: if some region has no covering IESP that sells the
                service.
        """
        assignments: dict[str, str] = {}
        per_region: dict[str, float] = {}
        for region in regions:
            best_name: Optional[str] = None
            best_price = float("inf")
            for offer in self.offers:
                if region not in offer.regions:
                    continue
                try:
                    price = offer.card.price(service_id, region, volume_gb_per_region)
                except RateError:
                    continue
                if price < best_price:
                    best_price = price
                    best_name = offer.name
            if best_name is None:
                raise BrokerError(
                    f"no IESP covers region {region!r} for service {service_id}"
                )
            assignments[region] = best_name
            per_region[region] = best_price
        return CoveragePlan(
            assignments=assignments,
            total_monthly=sum(per_region.values()),
            per_region=per_region,
        )

    def compare_with_global(
        self,
        service_id: int,
        regions: list[str],
        volume_gb_per_region: float,
        global_offer: IESPOffer,
    ) -> tuple[CoveragePlan, float]:
        """Broker-stitched plan vs one global IESP's price for all regions."""
        plan = self.plan(service_id, regions, volume_gb_per_region)
        global_total = 0.0
        for region in regions:
            if region not in global_offer.regions:
                raise BrokerError(
                    f"global IESP {global_offer.name} lacks region {region!r}"
                )
            global_total += global_offer.card.price(
                service_id, region, volume_gb_per_region
            )
        return plan, global_total

"""Settlement-free peering ledger (§5).

Every edomain peers settlement-free with every other edomain: ILP traffic
between edomains moves no money. The ledger records inter-edomain traffic
and enforces the invariant — any attempt to post a settlement charge for
ILP peering traffic is rejected, and the zero-balance property is
checkable at all times. Customer payments (host owners, application and
content providers paying their IESPs) flow through a separate account set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class PeeringError(Exception):
    """Raised when a settlement would violate the settlement-free rule."""


@dataclass
class TrafficRecord:
    src_edomain: str
    dst_edomain: str
    bytes_sent: int = 0
    packets_sent: int = 0


class PeeringLedger:
    """Traffic accounting with an enforced settlement-free invariant."""

    def __init__(self) -> None:
        self._traffic: dict[tuple[str, str], TrafficRecord] = {}
        #: customer -> IESP payments (the *allowed* money flows)
        self.customer_payments: list[tuple[str, str, float]] = []
        #: edomain-to-edomain transfer attempts (must stay empty)
        self.settlement_attempts: list[tuple[str, str, float]] = []

    def record_traffic(
        self, src_edomain: str, dst_edomain: str, n_bytes: int, n_packets: int = 1
    ) -> None:
        key = (src_edomain, dst_edomain)
        record = self._traffic.setdefault(
            key, TrafficRecord(src_edomain, dst_edomain)
        )
        record.bytes_sent += n_bytes
        record.packets_sent += n_packets

    def traffic(self, src_edomain: str, dst_edomain: str) -> TrafficRecord:
        return self._traffic.get(
            (src_edomain, dst_edomain), TrafficRecord(src_edomain, dst_edomain)
        )

    def imbalance(self, a: str, b: str) -> int:
        """Byte asymmetry between two edomains (informational only —
        settlement-free means it never triggers payment)."""
        return self.traffic(a, b).bytes_sent - self.traffic(b, a).bytes_sent

    def post_settlement(self, payer: str, payee: str, amount: float) -> None:
        """Attempting inter-edomain settlement is a protocol violation."""
        self.settlement_attempts.append((payer, payee, amount))
        raise PeeringError(
            f"settlement-free peering forbids {payer} paying {payee} "
            f"{amount:.2f} for ILP traffic"
        )

    def pay_iesp(self, customer: str, iesp: str, amount: float) -> None:
        """The legitimate money flow: customers pay their own IESP."""
        if amount < 0:
            raise PeeringError("payments cannot be negative")
        self.customer_payments.append((customer, iesp, amount))

    def interdomain_balance(self) -> float:
        """Total money moved between edomains — invariantly zero."""
        return 0.0  # post_settlement always raises; nothing can accrue

    def edomain_revenue(self, iesp: str) -> float:
        return sum(amount for _c, i, amount in self.customer_payments if i == iesp)

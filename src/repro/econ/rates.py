"""Published rate cards and nondiscrimination (§5 "how do we ensure
neutrality?").

Each IESP must publish standard rates and serve everyone on those terms.
Prices may vary by service, volume tier, and location — but never by
customer identity. :class:`RateCard` encodes exactly that structure, and
:class:`BillingEngine` computes charges from it; because the card has no
customer dimension, identical usage is priced identically by construction,
and the auditor (:mod:`repro.econ.neutrality`) verifies observed invoices.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional


class RateError(Exception):
    """Raised for malformed rate cards or unknown services."""


@dataclass(frozen=True)
class VolumeTier:
    """Price applies to usage at or above ``min_gb`` (up to the next tier)."""

    min_gb: float
    price_per_gb: float


@dataclass
class ServiceRate:
    service_id: int
    base_monthly: float
    tiers: list[VolumeTier]
    region_multipliers: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tiers:
            raise RateError("a service rate needs at least one tier")
        mins = [tier.min_gb for tier in self.tiers]
        if mins != sorted(mins) or mins[0] != 0.0:
            raise RateError("tiers must start at 0 and be ascending")


@dataclass(frozen=True)
class Invoice:
    customer: str
    service_id: int
    region: str
    volume_gb: float
    amount: float


class RateCard:
    """One IESP's published standard rates."""

    def __init__(self, iesp: str) -> None:
        self.iesp = iesp
        self._rates: dict[int, ServiceRate] = {}
        self.published = False

    def set_rate(self, rate: ServiceRate) -> None:
        self._rates[rate.service_id] = rate

    def publish(self) -> None:
        """Make the card public — a precondition for selling (§5)."""
        if not self._rates:
            raise RateError("cannot publish an empty rate card")
        self.published = True

    def rate_for(self, service_id: int) -> ServiceRate:
        try:
            return self._rates[service_id]
        except KeyError:
            raise RateError(
                f"{self.iesp} publishes no rate for service {service_id}"
            ) from None

    def services(self) -> list[int]:
        return sorted(self._rates)

    def price(self, service_id: int, region: str, volume_gb: float) -> float:
        """Price a month of usage. Customer identity is *not* an input."""
        if volume_gb < 0:
            raise RateError("volume cannot be negative")
        rate = self.rate_for(service_id)
        multiplier = rate.region_multipliers.get(region, 1.0)
        total = rate.base_monthly
        # Marginal tiered pricing over the volume.
        boundaries = [tier.min_gb for tier in rate.tiers] + [float("inf")]
        for i, tier in enumerate(rate.tiers):
            lo, hi = boundaries[i], boundaries[i + 1]
            if volume_gb <= lo:
                break
            total += (min(volume_gb, hi) - lo) * tier.price_per_gb
        return total * multiplier


class BillingEngine:
    """Computes invoices strictly from a published rate card."""

    def __init__(self, card: RateCard) -> None:
        self.card = card
        self.invoices: list[Invoice] = []

    def bill(
        self, customer: str, service_id: int, region: str, volume_gb: float
    ) -> Invoice:
        if not self.card.published:
            raise RateError(f"{self.card.iesp} has not published rates")
        invoice = Invoice(
            customer=customer,
            service_id=service_id,
            region=region,
            volume_gb=volume_gb,
            amount=self.card.price(service_id, region, volume_gb),
        )
        self.invoices.append(invoice)
        return invoice

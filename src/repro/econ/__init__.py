"""Interconnection economics: rates, neutrality, peering, brokers (§5)."""

from .broker import BrokerError, CoverageBroker, CoveragePlan, IESPOffer
from .neutrality import NeutralityAuditor, ServiceDecision, Violation
from .peering import PeeringError, PeeringLedger, TrafficRecord
from .rates import (
    BillingEngine,
    Invoice,
    RateCard,
    RateError,
    ServiceRate,
    VolumeTier,
)

__all__ = [
    "BillingEngine",
    "BrokerError",
    "CoverageBroker",
    "CoveragePlan",
    "IESPOffer",
    "Invoice",
    "NeutralityAuditor",
    "PeeringError",
    "PeeringLedger",
    "RateCard",
    "RateError",
    "ServiceDecision",
    "ServiceRate",
    "TrafficRecord",
    "Violation",
    "VolumeTier",
]

"""Accelerated library variants (§3.1).

"Service modules can also have alternative versions that directly leverage
various accelerators when available, but service modules must have a basic
version that only requires general compute support."

We model the *deployment* half of that story: accelerated variants expose
byte-identical interfaces to the basic libraries in
:mod:`repro.libs.cryptolib` / :mod:`repro.libs.media`, so an operator can
swap them into the execution environment (``env.libs.provide``) without
any service module changing — the WORA contract. Acceleration is modeled
as a virtual-time cost factor (the hardware does the same math faster),
plus operation counters a capacity planner can read.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cryptolib import CryptoLibrary
from .media import MediaLibrary


@dataclass(frozen=True)
class AcceleratorProfile:
    """What the operator's hardware buys, as virtual-time cost factors."""

    name: str
    crypto_speedup: float = 8.0  # AES-NI-class
    media_speedup: float = 20.0  # GPU-encoder-class

    def __post_init__(self) -> None:
        if self.crypto_speedup < 1.0 or self.media_speedup < 1.0:
            raise ValueError("an accelerator cannot be slower than software")


#: A typical SN build-out per §3.1's examples [56] (AES-NI) and [46] (GPU).
DEFAULT_PROFILE = AcceleratorProfile(name="aesni+gpu")


class AcceleratedCryptoLibrary(CryptoLibrary):
    """Drop-in crypto library backed by a crypto engine.

    Same API and results as :class:`CryptoLibrary`; accounts accelerated
    virtual cost so cost models and capacity planning see the speedup.
    """

    #: virtual seconds per byte in pure software (calibrated to the
    #: simulation-grade cipher, not real silicon)
    SOFTWARE_COST_PER_BYTE = 12e-9

    def __init__(self, profile: AcceleratorProfile = DEFAULT_PROFILE) -> None:
        super().__init__()
        self.profile = profile
        self.virtual_seconds = 0.0

    def _account(self, n_bytes: int) -> None:
        self.virtual_seconds += (
            n_bytes * self.SOFTWARE_COST_PER_BYTE / self.profile.crypto_speedup
        )

    def encrypt(self, key: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        self._account(len(plaintext))
        return super().encrypt(key, plaintext, aad)

    def decrypt(self, key: bytes, blob: bytes, aad: bytes = b"") -> bytes:
        self._account(len(blob))
        return super().decrypt(key, blob, aad)


class AcceleratedMediaLibrary(MediaLibrary):
    """Drop-in media library backed by a hardware encoder."""

    def __init__(self, profile: AcceleratorProfile = DEFAULT_PROFILE) -> None:
        super().__init__()
        self.profile = profile
        self.virtual_seconds = 0.0

    def transcode(self, chunk: bytes, profile_name: str) -> bytes:
        self.virtual_seconds += (
            self.cpu_cost(len(chunk), profile_name) / self.profile.media_speedup
        )
        return super().transcode(chunk, profile_name)


def install_accelerated_libraries(
    env, profile: AcceleratorProfile = DEFAULT_PROFILE
) -> None:
    """Operator hook: swap accelerated variants into an SN's environment.

    Service modules keep calling ``ctx.libs.get("crypto"/"media")``; only
    the implementation underneath changes (§3.1).
    """
    env.libs.provide("crypto", AcceleratedCryptoLibrary(profile))
    env.libs.provide("media", AcceleratedMediaLibrary(profile))

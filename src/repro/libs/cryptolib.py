"""Cryptography library for service modules (the AES-NI stand-in).

Wraps the repository's simulation-grade primitives behind the interface a
service module uses: payload encryption (distinct from ILP header PSP),
hashing, HMAC, and layered "onion" wrapping for relay/mixnet services.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
from dataclasses import dataclass

from ..core import crypto


class CryptoLibrary:
    """Payload crypto for services (private relay, mixnet, VPN, oDNS)."""

    def __init__(self) -> None:
        self.operations = 0
        self._nonces = crypto.NonceGenerator()

    def random_key(self) -> bytes:
        return crypto.random_key()

    def derive(self, master: bytes, label: str, context: bytes = b"") -> bytes:
        self.operations += 1
        return crypto.derive_key(master, label, context)

    def sha256(self, data: bytes) -> bytes:
        self.operations += 1
        return hashlib.sha256(data).digest()

    def hmac(self, key: bytes, data: bytes) -> bytes:
        self.operations += 1
        return hmac_mod.new(key, data, hashlib.sha256).digest()

    def encrypt(self, key: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Seal a payload; output embeds the nonce for stateless decrypt."""
        self.operations += 1
        nonce = self._nonces.next()
        return nonce + crypto.seal(key, nonce, plaintext, aad)

    def decrypt(self, key: bytes, blob: bytes, aad: bytes = b"") -> bytes:
        self.operations += 1
        if len(blob) < crypto.NONCE_SIZE + crypto.TAG_SIZE:
            raise crypto.CryptoError("ciphertext too short")
        nonce, sealed = blob[: crypto.NONCE_SIZE], blob[crypto.NONCE_SIZE :]
        return crypto.open_sealed(key, nonce, sealed, aad)

    # -- onion wrapping (mixnet / private relay) ---------------------------
    def onion_wrap(self, keys: list[bytes], plaintext: bytes) -> bytes:
        """Encrypt in layers: the first key is peeled first (outermost)."""
        blob = plaintext
        for key in reversed(keys):
            blob = self.encrypt(key, blob)
        return blob

    def onion_peel(self, key: bytes, blob: bytes) -> bytes:
        """Remove one layer."""
        return self.decrypt(key, blob)

"""Execution-environment libraries (§3.1).

SNs ship an extensible set of libraries service modules can use for common
tasks; the paper names cryptography (AES-NI), regular-expression matching
(Pigasus-style), and video/audio re-encoding. Modules obtain them via
``ctx.libs.get(name)`` so an SN operator can swap in accelerated versions
(§3.1 "alternative versions that directly leverage various accelerators").
"""

from .cryptolib import CryptoLibrary
from .media import MediaLibrary, TranscodeProfile
from .regexlib import RegexLibrary

LIB_CRYPTO = "crypto"
LIB_REGEX = "regex"
LIB_MEDIA = "media"


def standard_libraries() -> dict[str, object]:
    """The default (pure general-compute) library set every SN ships."""
    return {
        LIB_CRYPTO: CryptoLibrary(),
        LIB_REGEX: RegexLibrary(),
        LIB_MEDIA: MediaLibrary(),
    }


def install_standard_libraries(env) -> None:
    """Provide the standard libraries to an execution environment."""
    for name, lib in standard_libraries().items():
        env.libs.provide(name, lib)


__all__ = [
    "CryptoLibrary",
    "LIB_CRYPTO",
    "LIB_MEDIA",
    "LIB_REGEX",
    "MediaLibrary",
    "RegexLibrary",
    "TranscodeProfile",
    "install_standard_libraries",
    "standard_libraries",
]

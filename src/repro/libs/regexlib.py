"""Regular-expression matching library (the Pigasus/IDS stand-in).

Used by the firewall/NGFW service for payload inspection rules. Patterns
are compiled once and matched against payload bytes; the library keeps
per-pattern hit statistics so operators can audit rule effectiveness.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class _CompiledRule:
    pattern: re.Pattern
    hits: int = 0


class RegexLibrary:
    """Compiled byte-pattern matching with rule management."""

    def __init__(self) -> None:
        self._rules: dict[str, _CompiledRule] = {}
        self.scans = 0

    def add_rule(self, name: str, pattern: bytes | str) -> None:
        raw = pattern.encode() if isinstance(pattern, str) else pattern
        self._rules[name] = _CompiledRule(pattern=re.compile(raw))

    def remove_rule(self, name: str) -> bool:
        return self._rules.pop(name, None) is not None

    def rule_names(self) -> list[str]:
        return sorted(self._rules)

    def match(self, name: str, data: bytes) -> bool:
        """Does one named rule match the data?"""
        rule = self._rules[name]
        self.scans += 1
        if rule.pattern.search(data) is not None:
            rule.hits += 1
            return True
        return False

    def scan(self, data: bytes) -> list[str]:
        """All rule names matching the data (NGFW-style full scan)."""
        self.scans += 1
        matched = []
        for name, rule in self._rules.items():
            if rule.pattern.search(data) is not None:
                rule.hits += 1
                matched.append(name)
        return matched

    def hits(self, name: str) -> int:
        return self._rules[name].hits

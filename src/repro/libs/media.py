"""Video/audio re-encoding library (the GPU-encoder stand-in).

Transcoding at the edge (referenced in §3.1's library list and the
transcode bundle) is modeled at the granularity the architecture cares
about: a profile maps an input chunk to an output chunk whose size shrinks
by the bitrate ratio, at a per-byte CPU cost the cost model can charge.
The "encoded" output embeds a small descriptor so tests can verify which
profile produced it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass


class MediaError(Exception):
    """Raised on invalid transcode requests."""


@dataclass(frozen=True)
class TranscodeProfile:
    """An output rendition: name plus bitrate relative to source."""

    name: str
    bitrate_ratio: float  # output bits per input bit, in (0, 1]
    cpu_cost_per_byte: float = 5e-9  # virtual seconds per input byte

    def __post_init__(self) -> None:
        if not 0 < self.bitrate_ratio <= 1:
            raise MediaError("bitrate_ratio must be in (0, 1]")


#: Standard ladder, loosely an ABR set.
PROFILES = {
    "1080p": TranscodeProfile("1080p", 1.0),
    "720p": TranscodeProfile("720p", 0.55),
    "480p": TranscodeProfile("480p", 0.30),
    "audio": TranscodeProfile("audio", 0.05),
}

_MAGIC = b"MRE1"


class MediaLibrary:
    """Chunk transcoding with deterministic, inspectable output."""

    def __init__(self) -> None:
        self.chunks_encoded = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def profiles(self) -> list[str]:
        return sorted(PROFILES)

    def transcode(self, chunk: bytes, profile_name: str) -> bytes:
        """Re-encode a chunk to a profile.

        Output layout: MAGIC | profile-name-len | profile-name |
        original-len | truncated body sized by the bitrate ratio.
        """
        try:
            profile = PROFILES[profile_name]
        except KeyError:
            raise MediaError(f"unknown profile {profile_name!r}") from None
        out_len = max(1, int(len(chunk) * profile.bitrate_ratio))
        name = profile.name.encode()
        header = _MAGIC + struct.pack(">B", len(name)) + name + struct.pack(
            ">I", len(chunk)
        )
        body = chunk[:out_len]
        self.chunks_encoded += 1
        self.bytes_in += len(chunk)
        self.bytes_out += len(header) + len(body)
        return header + body

    @staticmethod
    def describe(encoded: bytes) -> tuple[str, int, int]:
        """(profile, original_len, encoded_body_len) of a transcoded chunk."""
        if not encoded.startswith(_MAGIC):
            raise MediaError("not a transcoded chunk")
        name_len = encoded[len(_MAGIC)]
        offset = len(_MAGIC) + 1
        name = encoded[offset : offset + name_len].decode()
        offset += name_len
        (original_len,) = struct.unpack_from(">I", encoded, offset)
        body_len = len(encoded) - offset - 4
        return name, original_len, body_len

    def cpu_cost(self, chunk_len: int, profile_name: str) -> float:
        """Virtual CPU seconds to transcode a chunk (cost-model hook)."""
        profile = PROFILES[profile_name]
        return chunk_len * profile.cpu_cost_per_byte

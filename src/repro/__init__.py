"""InterEdge: a reproduction of "An Architecture For Edge Networking
Services" (SIGCOMM 2024).

Quick start::

    from repro import InterEdge, WellKnownService
    from repro.services import IPDeliveryService

    net = InterEdge()
    dom = net.create_edomain("edge-west")
    sn = net.add_sn("edge-west")
    net.peer_all()
    net.deploy_service(IPDeliveryService)
    alice = net.add_host(sn)
    bob = net.add_host(sn)
    conn = alice.connect(WellKnownService.IP_DELIVERY, dest_addr=bob.address)
    alice.send(conn, b"hello interedge")
    net.run(1.0)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .core import (
    CostModel,
    Decision,
    DecisionCache,
    Host,
    ILPHeader,
    ILPPacket,
    InterEdge,
    InvocationMode,
    ServiceModule,
    ServiceNode,
    ServiceRegistry,
    Standardization,
    TLV,
    Verdict,
    WellKnownService,
)
from .netsim import Simulator

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "Decision",
    "DecisionCache",
    "Host",
    "ILPHeader",
    "ILPPacket",
    "InterEdge",
    "InvocationMode",
    "ServiceModule",
    "ServiceNode",
    "ServiceRegistry",
    "Simulator",
    "Standardization",
    "TLV",
    "Verdict",
    "WellKnownService",
    "__version__",
]

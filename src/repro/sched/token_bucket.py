"""Token-bucket rate limiter / shaper."""

from __future__ import annotations


class TokenBucket:
    """A classic token bucket.

    Args:
        rate_bps: sustained rate in bits per second.
        burst_bytes: bucket depth in bytes (max burst).

    Time is supplied by callers (virtual or wall-clock), keeping the bucket
    usable both under netsim and in real benchmarks.
    """

    def __init__(self, rate_bps: float, burst_bytes: int) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(
                self.burst_bytes,
                self._tokens + (now - self._last) * self.rate_bps / 8.0,
            )
            self._last = now

    def tokens_at(self, now: float) -> float:
        self._refill(now)
        return self._tokens

    def try_consume(self, size_bytes: int, now: float) -> bool:
        """Consume tokens for a packet if available; False = drop/queue."""
        self._refill(now)
        if self._tokens >= size_bytes:
            self._tokens -= size_bytes
            return True
        return False

    def time_until_available(self, size_bytes: int, now: float) -> float:
        """Seconds until ``size_bytes`` tokens will have accumulated."""
        self._refill(now)
        deficit = size_bytes - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit * 8.0 / self.rate_bps

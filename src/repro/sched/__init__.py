"""Packet schedulers used by the last-hop QoS service (§6.2).

The paper's last-hop QoS lets a receiver give its first-hop SN a total
access-link bandwidth plus weights/priorities per traffic stream, scheduled
with weighted-fair queueing and/or priority scheduling. This package
provides those schedulers as standalone, well-tested primitives:

* :class:`TokenBucket` — rate limiting / shaping;
* :class:`WeightedFairQueue` — virtual-time WFQ (Parekh's GPS emulation);
* :class:`DeficitRoundRobin` — the cheaper byte-fair alternative;
* :class:`PriorityScheduler` — strict priorities with WFQ within a level.
"""

from .drr import DeficitRoundRobin
from .priority import PriorityScheduler
from .token_bucket import TokenBucket
from .wfq import WeightedFairQueue

__all__ = [
    "DeficitRoundRobin",
    "PriorityScheduler",
    "TokenBucket",
    "WeightedFairQueue",
]

"""Weighted fair queueing via virtual finish times.

Implements the standard WFQ approximation of generalized processor sharing
(Parekh & Gallager): each flow has a weight; each enqueued packet gets a
virtual finish time ``max(V, F_prev) + size / weight``; dequeue picks the
smallest finish time. Over a backlogged interval, flow service converges to
the weight proportions — the property the A-QOS benchmark asserts.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class SchedulerError(Exception):
    """Raised for invalid scheduler usage."""


@dataclass
class _FlowState:
    weight: float
    last_finish: float = 0.0
    backlog: int = 0
    bytes_enqueued: int = 0
    bytes_dequeued: int = 0


class WeightedFairQueue:
    """A WFQ scheduler over named flows."""

    def __init__(self) -> None:
        self._flows: dict[str, _FlowState] = {}
        self._heap: list[tuple[float, int, str, int, Any]] = []
        self._seq = itertools.count()
        self._virtual_time = 0.0
        self._backlog_total = 0

    def add_flow(self, name: str, weight: float) -> None:
        if weight <= 0:
            raise SchedulerError("weight must be positive")
        if name in self._flows:
            raise SchedulerError(f"flow {name!r} already exists")
        self._flows[name] = _FlowState(weight=weight)

    def set_weight(self, name: str, weight: float) -> None:
        if weight <= 0:
            raise SchedulerError("weight must be positive")
        self._flow(name).weight = weight

    def _flow(self, name: str) -> _FlowState:
        try:
            return self._flows[name]
        except KeyError:
            raise SchedulerError(f"unknown flow {name!r}") from None

    def enqueue(self, flow: str, size_bytes: int, item: Any) -> None:
        state = self._flow(flow)
        start = max(self._virtual_time, state.last_finish)
        finish = start + size_bytes / state.weight
        state.last_finish = finish
        state.backlog += 1
        state.bytes_enqueued += size_bytes
        self._backlog_total += 1
        heapq.heappush(self._heap, (finish, next(self._seq), flow, size_bytes, item))

    def dequeue(self) -> Optional[tuple[str, int, Any]]:
        """Pop the next (flow, size, item), or None if empty."""
        if not self._heap:
            return None
        finish, _seq, flow, size, item = heapq.heappop(self._heap)
        self._virtual_time = finish
        state = self._flows[flow]
        state.backlog -= 1
        state.bytes_dequeued += size
        self._backlog_total -= 1
        if self._backlog_total == 0:
            # Idle system: reset virtual time to avoid unbounded growth.
            self._virtual_time = 0.0
            for st in self._flows.values():
                st.last_finish = 0.0
        return flow, size, item

    def __len__(self) -> int:
        return self._backlog_total

    @property
    def empty(self) -> bool:
        return self._backlog_total == 0

    def backlog(self, flow: str) -> int:
        return self._flow(flow).backlog

    def bytes_dequeued(self, flow: str) -> int:
        return self._flow(flow).bytes_dequeued

    def flows(self) -> list[str]:
        return sorted(self._flows)

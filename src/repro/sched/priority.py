"""Strict-priority scheduling with WFQ within each priority level.

The last-hop QoS service lets a household say "gaming is priority-high,
everything else shares the rest by weight" (§6.2). That maps to strict
priority between levels and WFQ among flows within a level.
"""

from __future__ import annotations

from typing import Any, Optional

from .wfq import SchedulerError, WeightedFairQueue


class PriorityScheduler:
    """Strict priorities (lower number = served first), WFQ within each."""

    def __init__(self) -> None:
        self._levels: dict[int, WeightedFairQueue] = {}
        self._flow_level: dict[str, int] = {}

    def add_flow(self, name: str, priority: int, weight: float = 1.0) -> None:
        if name in self._flow_level:
            raise SchedulerError(f"flow {name!r} already exists")
        level = self._levels.setdefault(priority, WeightedFairQueue())
        level.add_flow(name, weight)
        self._flow_level[name] = priority

    def enqueue(self, flow: str, size_bytes: int, item: Any) -> None:
        try:
            priority = self._flow_level[flow]
        except KeyError:
            raise SchedulerError(f"unknown flow {flow!r}") from None
        self._levels[priority].enqueue(flow, size_bytes, item)

    def dequeue(self) -> Optional[tuple[str, int, Any]]:
        for priority in sorted(self._levels):
            result = self._levels[priority].dequeue()
            if result is not None:
                return result
        return None

    def __len__(self) -> int:
        return sum(len(level) for level in self._levels.values())

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def bytes_dequeued(self, flow: str) -> int:
        priority = self._flow_level[flow]
        return self._levels[priority].bytes_dequeued(flow)

    def flows(self) -> list[str]:
        return sorted(self._flow_level)

"""Deficit round robin: byte-fair scheduling in O(1) per packet."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from .wfq import SchedulerError


@dataclass
class _DRRFlow:
    quantum: int
    deficit: int = 0
    queue: deque = field(default_factory=deque)  # (size, item)
    bytes_dequeued: int = 0


class DeficitRoundRobin:
    """DRR scheduler (Shreedhar & Varghese).

    Each active flow gets ``quantum`` bytes of credit per round; a packet is
    sent when the flow's deficit covers it. Quanta play the role of weights.
    """

    def __init__(self) -> None:
        self._flows: dict[str, _DRRFlow] = {}
        self._active: deque[str] = deque()
        self._total_backlog = 0

    def add_flow(self, name: str, quantum: int) -> None:
        if quantum <= 0:
            raise SchedulerError("quantum must be positive")
        if name in self._flows:
            raise SchedulerError(f"flow {name!r} already exists")
        self._flows[name] = _DRRFlow(quantum=quantum)

    def enqueue(self, flow: str, size_bytes: int, item: Any) -> None:
        try:
            state = self._flows[flow]
        except KeyError:
            raise SchedulerError(f"unknown flow {flow!r}") from None
        was_empty = not state.queue
        state.queue.append((size_bytes, item))
        self._total_backlog += 1
        if was_empty:
            self._active.append(flow)

    def dequeue(self) -> Optional[tuple[str, int, Any]]:
        """Pop the next (flow, size, item) per DRR rules, or None."""
        while self._active:
            flow = self._active[0]
            state = self._flows[flow]
            if not state.queue:
                self._active.popleft()
                continue
            size, _item = state.queue[0]
            if state.deficit < size:
                # End this flow's turn: grant a quantum, rotate.
                self._active.rotate(-1)
                state.deficit += state.quantum
                # Guard: if one packet exceeds quantum, keep accumulating —
                # rotation still gives other flows service in between.
                continue
            state.queue.popleft()
            state.deficit -= size
            state.bytes_dequeued += size
            self._total_backlog -= 1
            if not state.queue:
                state.deficit = 0
                self._active.popleft()
            return flow, size, _item
        return None

    def __len__(self) -> int:
        return self._total_backlog

    @property
    def empty(self) -> bool:
        return self._total_backlog == 0

    def bytes_dequeued(self, flow: str) -> int:
        return self._flows[flow].bytes_dequeued

"""Metrics: hierarchical counters/gauges and log-bucketed histograms.

The registry is the numeric half of the observability subsystem (the
:mod:`repro.obs.recorder` flight recorder is the structural half). Its
design constraints come from the datapath:

* **O(buckets) aggregation.** Sim-time latencies arrive from millions of
  packets; storing samples is out. :class:`Histogram` is a DDSketch-style
  log-bucketed sketch: a value lands in bucket ``ceil(log_gamma(v))``
  where ``gamma = (1 + a) / (1 - a)`` for a configured relative error
  ``a``, so any quantile read back is within ``a`` (relative) of the true
  recorded value, and the whole distribution is a small int-count map.
* **Mergeable.** Two histograms with the same ``relative_error`` merge by
  adding bucket counts — exactly (counts are ints), associatively and
  commutatively — so per-SN sketches roll up into edomain- and
  federation-level distributions without touching samples.
* **Cheap on the hot path.** :meth:`Histogram.record_many` records a
  whole flow run's worth of identical sim-time latencies with one bucket
  update, matching the terminus's per-group amortization.

Counters and gauges are deliberately plain; hierarchy comes from dotted
names (``terminus.fast_path``), which :meth:`MetricsRegistry.snapshot`
re-nests for export.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Union


class ObsError(Exception):
    """Raised for invalid uses of the observability subsystem."""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ObsError("counters only increase; use a Gauge")
        self.value += n


class Gauge:
    """A point-in-time level (queue depth, live entries, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A mergeable log-bucketed latency sketch with bounded-error quantiles.

    Nonpositive values land in a dedicated zero bucket (they are exact:
    a zero latency reads back as zero). Positive values map to bucket
    ``i = ceil(log(v) / log(gamma))``; the bucket's representative value
    ``2 * gamma**i / (gamma + 1)`` is within ``relative_error`` of every
    value the bucket can hold, which is what bounds quantile error.
    """

    __slots__ = (
        "relative_error",
        "_gamma",
        "_log_gamma",
        "_buckets",
        "zeros",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(self, relative_error: float = 0.01) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ObsError("relative_error must be in (0, 1)")
        self.relative_error = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        self.record_many(value, 1)

    def record_many(self, value: float, n: int) -> None:
        """Record ``n`` observations of ``value`` in O(1)."""
        if n <= 0:
            return
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += n
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + n

    # -- merging ----------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this sketch (bucket-exact); returns self."""
        if other.relative_error != self.relative_error:
            raise ObsError(
                "cannot merge histograms with different relative errors "
                f"({self.relative_error} vs {other.relative_error})"
            )
        buckets = self._buckets
        for index, n in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + n
        self.zeros += other.zeros
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def copy(self) -> "Histogram":
        out = Histogram(self.relative_error)
        out._buckets = dict(self._buckets)
        out.zeros = self.zeros
        out.count = self.count
        out.total = self.total
        out.min = self.min
        out.max = self.max
        return out

    @classmethod
    def merged(
        cls, parts: Iterable["Histogram"], relative_error: float = 0.01
    ) -> "Histogram":
        """A fresh sketch holding the union of ``parts`` (none mutated)."""
        out = cls(relative_error)
        for part in parts:
            out.merge(part)
        return out

    # -- reads ------------------------------------------------------------
    def bucket_counts(self) -> dict[int, int]:
        """The raw bucket map (index -> count); zeros are separate."""
        return dict(self._buckets)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) within bounded relative error."""
        if not 0.0 <= q <= 1.0:
            raise ObsError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zeros:
            return 0.0
        seen = self.zeros
        gamma = self._gamma
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return 2.0 * gamma**index / (gamma + 1.0)
        # Unreachable when the ledger balances; return the max as a floor.
        return self.max if self.max is not None else 0.0

    def percentile(self, pct: float) -> float:
        return self.quantile(pct / 100.0)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """The standard export shape (counts plus key percentiles)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics with dotted-path hierarchy.

    ``counter``/``gauge``/``histogram`` get-or-create; asking for an
    existing name as a different kind raises :class:`ObsError` (a name
    means one thing forever — dashboards depend on it).
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, kind: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind()
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise ObsError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        metric = self._get(name, Counter)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get(name, Gauge)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, relative_error: float = 0.01) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(relative_error)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ObsError(
                f"metric {name!r} is a {type(metric).__name__}, not a Histogram"
            )
        return metric

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in: counters/gauges add, sketches merge."""
        for name, metric in other._metrics.items():
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(name).add(metric.value)
            else:
                mine = self.histogram(name, metric.relative_error)
                mine.merge(metric)
        return self

    def snapshot(self) -> dict[str, object]:
        """Nested dict keyed by dotted-name segments (JSON-ready)."""
        root: dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            parts = name.split(".")
            node = root
            for part in parts[:-1]:
                child = node.setdefault(part, {})
                if not isinstance(child, dict):
                    # A leaf and a subtree share a prefix; nest the leaf
                    # under its own key so neither is silently dropped.
                    child = node[part] = {"": child}
                node = child
            leaf: object
            if isinstance(metric, Counter):
                leaf = metric.value
            elif isinstance(metric, Gauge):
                leaf = metric.value
            else:
                leaf = metric.summary()
            node[parts[-1]] = leaf
        return root

"""The flight recorder: a bounded ring of per-packet lifecycle spans.

A :class:`Span` is one named stage of a packet's (or a batch's) life —
``terminus.receive``, ``terminus.decrypt``, ``ipc.invoke``, ... — with
sim-time start/end stamps and a small attribute map (peer, service,
connection, counts). Spans belong to a **trace**: one ingress event
(a burst through :meth:`PipeTerminus.receive_batch`, or one scalar
:meth:`receive`) opens a fresh trace, and every stage the event's packets
pass through — shard groups, cold spans, the miss-queue lifecycle, the
IPC boundary, enclave crossings — records into it. Span order in the
ring is begin order, so a trace reads as the lifecycle grammar the
conformance suite checks::

    receive -> decrypt -> (cache_hit | punt [-> park -> (drain | replay)])
            -> seal -> send

Design constraints, in priority order:

* **Free when off.** The shared :data:`NULL_RECORDER` singleton is what
  every component holds by default; its methods are no-ops and its
  ``enabled``/``recording`` flags are ``False``, so uninstrumented runs
  pay one attribute check per *stage*, never per packet. The
  benchmark gate in ``benchmarks/test_terminus_pipeline.py`` holds this
  to <= 3% of fast-path throughput.
* **Sampling-aware when on.** ``sample_every=N`` records every Nth
  trace; ``recording`` is False for unsampled traces so call sites skip
  attribute-dict construction entirely. ``sample_every=0`` keeps the
  recorder attached but samples nothing (the overhead benchmark's
  "enabled but quiet" arm).
* **Bounded.** The ring keeps the last ``capacity`` spans; a soak run
  cannot grow memory without bound.
* **Passive.** Recording never mutates packets, stats, caches, or RNG
  state: wire output and :class:`TerminusStats` are byte-identical with
  the recorder on or off (property-tested).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterator, Optional


class Span:
    """One recorded stage: name, trace id, sim-time start/end, attributes.

    Also a context manager (``with recorder.span(...)``); explicit
    :meth:`FlightRecorder.begin_span` call sites must pair with
    :meth:`FlightRecorder.end_span` on every path (rule OBS001).
    """

    __slots__ = ("name", "trace", "seq", "start", "end", "attrs", "_clock")

    def __init__(
        self,
        name: str,
        trace: int,
        seq: int,
        start: float,
        clock: Callable[[], float],
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.trace = trace
        self.seq = seq
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self._clock = clock

    @property
    def done(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def close(self) -> None:
        if self.end is None:
            self.end = self._clock()

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Span({self.name!r}, trace={self.trace}, start={self.start}, "
            f"end={self.end}, attrs={self.attrs})"
        )


class _NullSpan:
    """The shared do-nothing span handed out when recording is off."""

    __slots__ = ()

    name = ""
    trace = -1
    seq = -1
    start = 0.0
    end: Optional[float] = 0.0
    attrs: dict[str, Any] = {}
    done = True
    duration = 0.0

    def close(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


#: The span every no-op begin returns; identity-checked by end_span.
NULL_SPAN = _NullSpan()


class FlightRecorder:
    """A bounded ring buffer of spans with a propagating trace context."""

    __slots__ = (
        "capacity",
        "sample_every",
        "_clock",
        "_ring",
        "_seq",
        "_trace",
        "_sampled",
        "traces_started",
        "traces_sampled",
        "spans_dropped",
    )

    #: Real recorders record; the NULL recorder overrides this to False.
    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = 4096,
        sample_every: int = 1,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0 (0 = sample nothing)")
        self.capacity = capacity
        self.sample_every = sample_every
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._seq = 0
        self._trace = 0
        self._sampled = False
        self.traces_started = 0
        self.traces_sampled = 0
        self.spans_dropped = 0

    # -- trace context ----------------------------------------------------
    def new_trace(self) -> int:
        """Open a fresh trace (one ingress event); returns its id.

        Applies the sampling decision: with ``sample_every=N`` every Nth
        trace records, the rest are no-ops end to end (``recording`` is
        False and every begin returns :data:`NULL_SPAN`).
        """
        self._trace += 1
        self.traces_started += 1
        if self.sample_every > 0:
            self._sampled = (self._trace - 1) % self.sample_every == 0
        else:
            self._sampled = False
        if self._sampled:
            self.traces_sampled += 1
        return self._trace

    @property
    def recording(self) -> bool:
        """True when the *current* trace is being recorded."""
        return self._sampled

    @property
    def current_trace(self) -> int:
        return self._trace

    # -- span lifecycle ---------------------------------------------------
    def begin_span(self, name: str, **attrs: Any) -> Any:
        """Open a span in the current trace; pair with :meth:`end_span`."""
        if not self._sampled:
            return NULL_SPAN
        if len(self._ring) == self.capacity:
            self.spans_dropped += 1
        span = Span(name, self._trace, self._seq, self._clock(), self._clock, attrs)
        self._seq += 1
        self._ring.append(span)
        return span

    def end_span(self, span: Any) -> None:
        """Close a span returned by :meth:`begin_span` (NULL-safe)."""
        span.close()

    def span(self, name: str, **attrs: Any) -> Any:
        """Context-managed :meth:`begin_span` (closes on exit)."""
        return self.begin_span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """A zero-duration span (begin and end at the same stamp)."""
        if not self._sampled:
            return
        span = self.begin_span(name, **attrs)
        span.close()

    # -- queries ----------------------------------------------------------
    def spans(
        self,
        name: Optional[str] = None,
        trace: Optional[int] = None,
        **attr_filter: Any,
    ) -> list[Span]:
        """Spans in begin order, optionally filtered by name/trace/attrs."""
        out = []
        for span in self._ring:
            if name is not None and span.name != name:
                continue
            if trace is not None and span.trace != trace:
                continue
            if attr_filter and any(
                span.attrs.get(key) != value for key, value in attr_filter.items()
            ):
                continue
            out.append(span)
        return out

    def sequence(
        self, trace: Optional[int] = None, **attr_filter: Any
    ) -> list[str]:
        """Just the span names, in begin order (the grammar's terminals)."""
        return [s.name for s in self.spans(trace=trace, **attr_filter)]

    def traces(self) -> list[int]:
        """Distinct trace ids present in the ring, in first-seen order."""
        seen: dict[int, None] = {}
        for span in self._ring:
            seen.setdefault(span.trace, None)
        return list(seen)

    def iter_spans(self) -> Iterator[Span]:
        return iter(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()


class NullRecorder:
    """The shared no-op recorder every component holds when obs is off.

    Implements the full :class:`FlightRecorder` surface as no-ops so
    instrumented code never branches on recorder *type*, only on the
    ``enabled``/``recording`` flags (or not at all — calling straight
    through costs one no-op method call).
    """

    __slots__ = ()

    enabled = False
    recording = False
    current_trace = -1
    sample_every = 0
    capacity = 0
    traces_started = 0
    traces_sampled = 0
    spans_dropped = 0

    def new_trace(self) -> int:
        return -1

    def begin_span(self, name: str, **attrs: Any) -> Any:
        return NULL_SPAN

    def end_span(self, span: Any) -> None:
        return None

    def span(self, name: str, **attrs: Any) -> Any:
        return NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def spans(self, *args: Any, **kwargs: Any) -> list[Span]:
        return []

    def sequence(self, *args: Any, **kwargs: Any) -> list[str]:
        return []

    def traces(self) -> list[int]:
        return []

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        return None


#: The singleton every instrumented component defaults to.
NULL_RECORDER = NullRecorder()

"""Exporters: registry + recorder state as JSON or a human-readable table.

Two shapes for two audiences:

* :func:`to_json` — a machine-readable snapshot (nested metrics dict,
  recorder counters, optionally the raw spans) for dashboards and the
  EXPERIMENTS harness. Deterministic key order (sorted) so snapshots
  diff cleanly across runs.
* :func:`to_table` — a fixed-width text table for terminal eyes: one
  row per metric, histograms expanded to count/mean/p50/p99/p999.

Both take the :class:`~repro.obs.NodeObs` bundle or bare
registry/recorder pieces; federation-level roll-ups go through
:func:`merged_registry` first (histograms merge bucket-exactly, so the
roll-up's percentiles carry the same error bound as any single SN's).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import FlightRecorder


def merged_registry(parts: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Fold many registries into a fresh one (none of ``parts`` mutated)."""
    out = MetricsRegistry()
    for part in parts:
        out.merge(part)
    return out


def snapshot_dict(
    registry: Optional[MetricsRegistry] = None,
    recorder: Optional[FlightRecorder] = None,
    include_spans: bool = False,
) -> dict[str, Any]:
    """The canonical export shape both serializers build from."""
    out: dict[str, Any] = {}
    if registry is not None:
        out["metrics"] = registry.snapshot()
    if recorder is not None:
        out["recorder"] = {
            "capacity": recorder.capacity,
            "sample_every": recorder.sample_every,
            "traces_started": recorder.traces_started,
            "traces_sampled": recorder.traces_sampled,
            "spans_recorded": len(recorder),
            "spans_dropped": recorder.spans_dropped,
        }
        if include_spans:
            out["spans"] = [
                {
                    "name": span.name,
                    "trace": span.trace,
                    "start": span.start,
                    "end": span.end,
                    "attrs": dict(span.attrs),
                }
                for span in recorder.iter_spans()
            ]
    return out


def to_json(
    registry: Optional[MetricsRegistry] = None,
    recorder: Optional[FlightRecorder] = None,
    include_spans: bool = False,
    indent: Optional[int] = 2,
) -> str:
    """A JSON snapshot with deterministic (sorted) key order."""
    return json.dumps(
        snapshot_dict(registry, recorder, include_spans=include_spans),
        indent=indent,
        sort_keys=True,
    )


def _format_value(value: float) -> str:
    """Compact fixed-width rendering: latencies in µs-range stay readable."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def to_table(
    registry: MetricsRegistry,
    recorder: Optional[FlightRecorder] = None,
    title: str = "metrics",
) -> str:
    """A fixed-width text table: one row per metric, sorted by name."""
    rows: list[tuple[str, str, str]] = []
    for name in registry.names():
        metric = registry.get(name)
        if isinstance(metric, Counter):
            rows.append((name, "counter", _format_value(metric.value)))
        elif isinstance(metric, Gauge):
            rows.append((name, "gauge", _format_value(metric.value)))
        elif isinstance(metric, Histogram):
            if metric.count == 0:
                rows.append((name, "histogram", "count=0"))
            else:
                detail = (
                    f"count={metric.count} mean={_format_value(metric.mean)} "
                    f"p50={_format_value(metric.quantile(0.50))} "
                    f"p99={_format_value(metric.quantile(0.99))} "
                    f"p999={_format_value(metric.quantile(0.999))}"
                )
                rows.append((name, "histogram", detail))
    if recorder is not None:
        rows.append(
            (
                "recorder",
                "ring",
                f"traces={recorder.traces_started} "
                f"sampled={recorder.traces_sampled} "
                f"spans={len(recorder)} dropped={recorder.spans_dropped}",
            )
        )
    name_w = max([len(r[0]) for r in rows], default=4)
    kind_w = max([len(r[1]) for r in rows], default=4)
    lines = [title, "-" * len(title)]
    for name, kind, detail in rows:
        lines.append(f"{name:<{name_w}}  {kind:<{kind_w}}  {detail}")
    return "\n".join(lines)

"""repro.obs — the datapath observability subsystem.

Three pieces, one contract:

* :class:`MetricsRegistry` / :class:`Histogram` (``repro.obs.metrics``) —
  hierarchical counters/gauges plus DDSketch-style log-bucketed latency
  sketches with mergeable buckets and bounded-error quantiles.
* :class:`FlightRecorder` (``repro.obs.recorder``) — a bounded ring of
  per-packet lifecycle spans with a trace context that follows packets
  through the terminus fast path, the miss queue, the IPC boundary,
  enclave crossings, and failover.
* Exporters (``repro.obs.export``) — JSON snapshot + fixed-width table,
  wired into ``repro.core.monitoring`` for percentile columns.

The contract: observability is **purely observational**. With the shared
:data:`NULL_RECORDER` installed (the default), instrumented components
run the PR 6 code paths with at most one no-op call per stage; with a
real recorder installed, wire output and every stats ledger stay
byte-identical. Arm it per node with
:meth:`repro.core.service_node.ServiceNode.enable_observability` or
globally with ``REPRO_OBS=1`` in the environment.
"""

from __future__ import annotations

import os

from .export import merged_registry, snapshot_dict, to_json, to_table
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, ObsError
from .recorder import NULL_RECORDER, NULL_SPAN, FlightRecorder, NullRecorder, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsError",
    "FlightRecorder",
    "NullRecorder",
    "Span",
    "NULL_RECORDER",
    "NULL_SPAN",
    "NodeObs",
    "enabled_from_env",
    "merged_registry",
    "snapshot_dict",
    "to_json",
    "to_table",
]

_TRUTHY = {"1", "true", "yes", "on"}


def enabled_from_env(environ: "os._Environ[str] | dict[str, str] | None" = None) -> bool:
    """True when ``REPRO_OBS`` asks for observability (1/true/yes/on)."""
    env = environ if environ is not None else os.environ
    return env.get("REPRO_OBS", "").strip().lower() in _TRUTHY


class NodeObs:
    """One service node's observability bundle: recorder + registry.

    Built by :meth:`ServiceNode.enable_observability`, which threads the
    recorder through the terminus, invocation channel, execution
    environment, and enclaves. The two hot histograms — and the overload
    counters the slow path bumps under pressure — are cached as
    attributes so the datapath records without a registry lookup.
    """

    __slots__ = (
        "recorder",
        "registry",
        "terminus_latency",
        "punt_latency",
        "sheds",
        "deadline_misses",
        "short_circuits",
        "breaker_trips",
        "retries",
        "breakers_open",
    )

    def __init__(self, recorder: FlightRecorder, registry: MetricsRegistry) -> None:
        self.recorder = recorder
        self.registry = registry
        self.terminus_latency = registry.histogram("terminus.latency")
        self.punt_latency = registry.histogram("punt.latency")
        # Overload-resilience surface: all zero (and the gauge flat) unless
        # the node's OverloadGuard is actually configured and tripping.
        self.sheds = registry.counter("overload.sheds")
        self.deadline_misses = registry.counter("overload.deadline_misses")
        self.short_circuits = registry.counter("overload.short_circuits")
        self.breaker_trips = registry.counter("overload.breaker_trips")
        self.retries = registry.counter("overload.retries")
        self.breakers_open = registry.gauge("overload.breakers_open")

    def export_json(self, include_spans: bool = False) -> str:
        return to_json(self.registry, self.recorder, include_spans=include_spans)

    def export_table(self, title: str = "node observability") -> str:
        return to_table(self.registry, self.recorder, title=title)

"""WireGuard-style tunnel substrate for the direct-peering evaluation."""

from .mesh import MeshReport, TunnelMesh
from .tunnel import (
    DEFAULT_KEEPALIVE_INTERVAL,
    DEFAULT_REKEY_INTERVAL,
    HANDSHAKE_INITIATION_BYTES,
    HANDSHAKE_RESPONSE_BYTES,
    KEEPALIVE_BYTES,
    TRANSPORT_OVERHEAD_BYTES,
    TunnelError,
    TunnelStats,
    WireGuardTunnel,
)

__all__ = [
    "DEFAULT_KEEPALIVE_INTERVAL",
    "DEFAULT_REKEY_INTERVAL",
    "HANDSHAKE_INITIATION_BYTES",
    "HANDSHAKE_RESPONSE_BYTES",
    "KEEPALIVE_BYTES",
    "MeshReport",
    "TRANSPORT_OVERHEAD_BYTES",
    "TunnelError",
    "TunnelMesh",
    "TunnelStats",
    "WireGuardTunnel",
]

"""Tunnel mesh manager: many simultaneous tunnels on one node.

This is the object the C-PEER benchmark drives: create N tunnels, advance
virtual time, and report (i) maintenance bandwidth in Mbps and (ii) real
CPU seconds consumed per virtual second — the "fraction of a core" number
from Appendix C.

Maintenance is scheduled with a single due-time heap over all tunnels, so
advancing time is O(events log N) rather than O(N) per tick; a commodity
node does the analogous thing with kernel timers.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Optional

from .tunnel import (
    DEFAULT_KEEPALIVE_INTERVAL,
    DEFAULT_REKEY_INTERVAL,
    WireGuardTunnel,
)

_REKEY = 0
_KEEPALIVE = 1


@dataclass
class MeshReport:
    """Maintenance costs over one measured window."""

    tunnels: int
    virtual_duration: float
    cpu_seconds: float
    control_bytes: int
    rekeys: int
    keepalives: int

    @property
    def bandwidth_mbps(self) -> float:
        if self.virtual_duration <= 0:
            return 0.0
        return self.control_bytes * 8 / self.virtual_duration / 1e6

    @property
    def core_equivalents(self) -> float:
        """Real CPU seconds per virtual second — 'fraction of a core'."""
        if self.virtual_duration <= 0:
            return 0.0
        return self.cpu_seconds / self.virtual_duration


class TunnelMesh:
    """All tunnels maintained by one node (e.g. an edomain border SN)."""

    def __init__(
        self,
        local_id: str,
        rekey_interval: float = DEFAULT_REKEY_INTERVAL,
        keepalive_interval: float = DEFAULT_KEEPALIVE_INTERVAL,
        keepalives_enabled: bool = True,
    ) -> None:
        self.local_id = local_id
        self.rekey_interval = rekey_interval
        self.keepalive_interval = keepalive_interval
        self.keepalives_enabled = keepalives_enabled
        self.tunnels: dict[str, WireGuardTunnel] = {}
        self._due: list[tuple[float, int, str]] = []  # (when, kind, peer)
        self.now = 0.0

    def __len__(self) -> int:
        return len(self.tunnels)

    def add_peer(self, peer_id: str) -> WireGuardTunnel:
        if peer_id in self.tunnels:
            raise ValueError(f"tunnel to {peer_id} already exists")
        tunnel = WireGuardTunnel(
            self.local_id,
            peer_id,
            rekey_interval=self.rekey_interval,
            keepalive_interval=self.keepalive_interval,
        )
        tunnel.handshake(self.now)
        self.tunnels[peer_id] = tunnel
        heapq.heappush(self._due, (tunnel.next_rekey_at, _REKEY, peer_id))
        if self.keepalives_enabled:
            heapq.heappush(
                self._due, (tunnel.next_keepalive_at, _KEEPALIVE, peer_id)
            )
        return tunnel

    def add_peers(self, count: int, prefix: str = "peer") -> None:
        for i in range(count):
            self.add_peer(f"{prefix}-{i}")

    def remove_peer(self, peer_id: str) -> bool:
        # Stale heap entries are skipped lazily at pop time.
        return self.tunnels.pop(peer_id, None) is not None

    def advance(self, until: float) -> MeshReport:
        """Run all maintenance due in (now, until]; returns the window report.

        CPU time is measured with ``time.process_time`` around the actual
        maintenance work (key derivations, bookkeeping).
        """
        start_control = sum(t.stats.control_bytes for t in self.tunnels.values())
        start_rekeys = sum(t.stats.rekeys for t in self.tunnels.values())
        start_keepalives = sum(
            t.stats.keepalives_sent for t in self.tunnels.values()
        )
        window = until - self.now
        cpu_start = time.process_time()
        while self._due and self._due[0][0] <= until:
            when, kind, peer = heapq.heappop(self._due)
            tunnel = self.tunnels.get(peer)
            if tunnel is None:
                continue  # removed peer; stale entry
            if kind == _REKEY:
                if when < tunnel.next_rekey_at:
                    # Superseded by a newer handshake: track the new due time.
                    heapq.heappush(self._due, (tunnel.next_rekey_at, _REKEY, peer))
                    continue
                tunnel.rekey(when)
                heapq.heappush(self._due, (tunnel.next_rekey_at, _REKEY, peer))
            else:
                if when < tunnel.next_keepalive_at:
                    heapq.heappush(
                        self._due, (tunnel.next_keepalive_at, _KEEPALIVE, peer)
                    )
                    continue
                tunnel.keepalive(when)
                heapq.heappush(
                    self._due, (tunnel.next_keepalive_at, _KEEPALIVE, peer)
                )
        cpu_seconds = time.process_time() - cpu_start
        self.now = until
        return MeshReport(
            tunnels=len(self.tunnels),
            virtual_duration=window,
            cpu_seconds=cpu_seconds,
            control_bytes=sum(t.stats.control_bytes for t in self.tunnels.values())
            - start_control,
            rekeys=sum(t.stats.rekeys for t in self.tunnels.values()) - start_rekeys,
            keepalives=sum(t.stats.keepalives_sent for t in self.tunnels.values())
            - start_keepalives,
        )

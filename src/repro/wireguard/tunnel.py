"""A WireGuard-style tunnel model.

Appendix C benchmarks direct peering by asking whether one commodity node
can maintain ~98,000 WireGuard tunnels, each rotating symmetric keys every
three minutes, and finds it costs under half a core and ~3.4 Mbps.

We model the parts of WireGuard that cost anything at that scale:

* the Noise-IK handshake (2 messages: 148 B initiation + 92 B response),
  rerun at every rekey interval — each rekey performs real key-derivation
  work (HKDF-style HMAC chains), so the CPU measurement is honest;
* keepalives (32 B) on their own timer;
* transport-data encapsulation overhead (32 B/packet) for completeness.

Message *sizes* follow the WireGuard wire format; message *contents* use
the repository's simulation-grade crypto (DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core import crypto

HANDSHAKE_INITIATION_BYTES = 148
HANDSHAKE_RESPONSE_BYTES = 92
KEEPALIVE_BYTES = 32
TRANSPORT_OVERHEAD_BYTES = 32

DEFAULT_REKEY_INTERVAL = 180.0  # the paper's three-minute rotation
DEFAULT_KEEPALIVE_INTERVAL = 25.0


class TunnelError(Exception):
    """Raised on invalid tunnel state transitions."""


@dataclass
class TunnelStats:
    handshakes: int = 0
    rekeys: int = 0
    keepalives_sent: int = 0
    control_bytes: int = 0  # handshake + keepalive bytes (both directions)
    data_packets: int = 0
    data_bytes: int = 0


class WireGuardTunnel:
    """One point-to-point tunnel with periodic rekey and keepalive."""

    def __init__(
        self,
        local_id: str,
        peer_id: str,
        rekey_interval: float = DEFAULT_REKEY_INTERVAL,
        keepalive_interval: float = DEFAULT_KEEPALIVE_INTERVAL,
        psk: Optional[bytes] = None,
    ) -> None:
        self.local_id = local_id
        self.peer_id = peer_id
        self.rekey_interval = rekey_interval
        self.keepalive_interval = keepalive_interval
        self._static = psk or crypto.derive_key(
            crypto.derive_key(b"wireguard-sim-root".ljust(16, b"\x00"), "static"),
            "pair",
            f"{local_id}|{peer_id}".encode(),
        )
        self._send_key: Optional[bytes] = None
        self._recv_key: Optional[bytes] = None
        self._epoch = 0
        self._nonces = crypto.NonceGenerator()
        self.established = False
        self.stats = TunnelStats()
        self.next_rekey_at = 0.0
        self.next_keepalive_at = 0.0

    # -- handshake / rekey ----------------------------------------------------
    def _derive_transport_keys(self) -> None:
        """The real CPU work of a handshake: an HKDF-like chain."""
        epoch_ctx = self._epoch.to_bytes(4, "big")
        chaining = crypto.derive_key(self._static, "noise-ck", epoch_ctx)
        ephemeral = crypto.derive_key(chaining, "ephemeral", epoch_ctx)
        mixed = crypto.derive_key(chaining, "mix", ephemeral)
        self._send_key = crypto.derive_key(mixed, "send", epoch_ctx)
        self._recv_key = crypto.derive_key(mixed, "recv", epoch_ctx)

    def handshake(self, now: float) -> int:
        """Perform the 2-message handshake; returns control bytes used."""
        self._epoch += 1
        self._derive_transport_keys()
        self.established = True
        self.stats.handshakes += 1
        used = HANDSHAKE_INITIATION_BYTES + HANDSHAKE_RESPONSE_BYTES
        self.stats.control_bytes += used
        self.next_rekey_at = now + self.rekey_interval
        self.next_keepalive_at = now + self.keepalive_interval
        return used

    def rekey(self, now: float) -> int:
        """Symmetric key rotation = a fresh handshake (WireGuard semantics)."""
        if not self.established:
            raise TunnelError("cannot rekey before handshake")
        self.stats.rekeys += 1
        return self.handshake(now)

    def keepalive(self, now: float) -> int:
        if not self.established:
            raise TunnelError("cannot keepalive before handshake")
        self.stats.keepalives_sent += 1
        self.stats.control_bytes += KEEPALIVE_BYTES
        self.next_keepalive_at = now + self.keepalive_interval
        return KEEPALIVE_BYTES

    # -- transport ----------------------------------------------------------
    def encrypt(self, plaintext: bytes) -> bytes:
        if self._send_key is None:
            raise TunnelError("tunnel not established")
        nonce = self._nonces.next()
        sealed = crypto.seal(self._send_key, nonce, plaintext)
        self.stats.data_packets += 1
        self.stats.data_bytes += len(sealed) + TRANSPORT_OVERHEAD_BYTES - crypto.TAG_SIZE
        return nonce + sealed

    def decrypt(self, blob: bytes) -> bytes:
        if self._recv_key is None:
            raise TunnelError("tunnel not established")
        nonce, sealed = blob[: crypto.NONCE_SIZE], blob[crypto.NONCE_SIZE :]
        # Loopback model: peers share the derivation, so send==recv keys.
        return crypto.open_sealed(self._send_key, nonce, sealed)

    @property
    def epoch(self) -> int:
        return self._epoch

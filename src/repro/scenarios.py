"""Prebuilt InterEdge scenarios.

Examples, integration tests, and scale benchmarks keep building the same
shapes of federation; this module canonicalizes them:

* :func:`small_federation` — 2 edomains × 2 SNs, the workhorse;
* :func:`metro_federation` — parameterized N edomains × M SNs × H hosts,
  for scale sweeps;
* :func:`enterprise_scenario` — a pass-through gateway + IESP SNs + an
  internal and an external host, for security demos.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .core.federation import InterEdge
from .core.host import Host
from .core.service_node import ServiceNode
from .services import standard_registry


@dataclass
class ScenarioHandles:
    """Everything a caller needs to drive a built scenario."""

    net: InterEdge
    sns: list[ServiceNode] = field(default_factory=list)
    hosts: list[Host] = field(default_factory=list)
    extras: dict = field(default_factory=dict)


def small_federation() -> ScenarioHandles:
    """Two edomains, two SNs each, fully peered, everything deployed."""
    net = InterEdge(registry=standard_registry())
    sns = []
    for name in ("west", "east"):
        net.create_edomain(name)
        sns.append(net.add_sn(name, name=f"sn-{name}-0"))
        sns.append(net.add_sn(name, name=f"sn-{name}-1"))
    net.peer_all()
    net.deploy_required_services()
    return ScenarioHandles(net=net, sns=sns)


def metro_federation(
    n_edomains: int = 4,
    sns_per_edomain: int = 3,
    hosts_per_sn: int = 2,
    internal_latency: float = 0.002,
    border_latency: float = 0.010,
) -> ScenarioHandles:
    """A parameterized multi-IESP metro: the scale-benchmark substrate."""
    net = InterEdge(registry=standard_registry())
    sns: list[ServiceNode] = []
    for d in range(n_edomains):
        name = f"edomain-{d}"
        net.create_edomain(name)
        for s in range(sns_per_edomain):
            sns.append(net.add_sn(name, name=f"sn-{d}-{s}"))
    net.peer_all(
        internal_latency=internal_latency, border_latency=border_latency
    )
    net.deploy_required_services()
    hosts: list[Host] = []
    for sn in sns:
        for h in range(hosts_per_sn):
            hosts.append(net.add_host(sn, name=f"host-{sn.name}-{h}"))
    return ScenarioHandles(net=net, sns=sns, hosts=hosts)


def enterprise_scenario() -> ScenarioHandles:
    """An enterprise with a pass-through gateway behind an IESP (§3.2)."""
    from .services.firewall import ImposedFirewall, RuleSet

    handles = small_federation()
    net = handles.net
    edge_sn = handles.sns[0]
    gateway = ServiceNode(
        net.sim, "enterprise-gw", "10.200.0.1", edomain_name=edge_sn.edomain_name
    )
    gateway.directory = net.directory
    net.directory.register(
        gateway.address, edge_sn.edomain_name, via=edge_sn.address
    )
    gateway.establish_pipe(edge_sn, latency=0.001)
    gateway.configure_pass_through(
        next_hop=edge_sn.address, chain=[ImposedFirewall(RuleSet())]
    )
    inside = net.add_host(gateway, name="inside", latency=0.0005)
    outside = net.add_host(handles.sns[-1], name="outside")
    net.lookup.register_address(
        inside.address, inside.keypair, associated_sns=[gateway.address]
    )
    handles.extras = {"gateway": gateway, "inside": inside, "outside": outside}
    return handles

"""Deterministic fault injection for simulated networks.

Chaos experiments used to reach into private link state (``link._rng = …``)
from test bodies, which made fault timing implicit in Python execution
order and impossible to replay. This module makes faults first-class:

* :class:`FaultPlan` — a declarative, *seeded* schedule of fault events
  (link flaps, loss-rate ramps, latency spikes, SN crash/restart,
  partitions). All randomness (flap jitter) is drawn from the plan's seed
  at build time, so two plans built with the same seed and the same
  builder calls are equal, event for event.
* :class:`FaultInjector` — binds a plan's symbolic targets to concrete
  :class:`~repro.netsim.link.Link` / :class:`~repro.netsim.node.NetNode`
  objects, arms the events on a :class:`~repro.netsim.engine.Simulator`,
  and records an **event trace** as events fire. Two runs of the same
  plan over the same topology produce identical traces (and, because the
  engine is deterministic, identical end states) — asserted by
  ``tests/test_fault_injection_unit.py``.

Targets are strings: node names for crash/restart, canonical link names
(see :func:`link_name`) for link faults. The injector resolves them at
fire time, so a plan can be built before the topology exists.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from .engine import Simulator
from .link import Link
from .node import NetNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass


class FaultError(Exception):
    """Raised for invalid fault plans or unresolvable targets."""


def link_name(a: Any, b: Any) -> str:
    """Canonical symbolic name for the link between two nodes (or names)."""
    name_a = a if isinstance(a, str) else a.name
    name_b = b if isinstance(b, str) else b.name
    lo, hi = sorted((name_a, name_b))
    return f"{lo}<->{hi}"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: what happens to whom, when.

    ``at`` is an absolute virtual time. ``value`` is kind-specific: a loss
    rate, a latency delta, a reseed value, or a partition's two node-name
    groups.
    """

    at: float
    kind: str
    target: str
    value: Any = None


#: Event kinds the injector understands.
KINDS = (
    "link_down",
    "link_up",
    "loss_rate",
    "reseed",
    "delay_spike_start",
    "delay_spike_end",
    "crash",
    "restart",
    "partition",
    "heal",
    "service_slowdown",
    "service_hang",
    "service_recover",
    "punt_storm",
)


class FaultPlan:
    """A declarative, seeded schedule of fault events.

    Builder methods append events and return ``self`` so plans chain::

        plan = (
            FaultPlan(seed=7)
            .link_flap("sn-a<->sn-b", at=1.0, period=0.5, count=3, jitter=0.1)
            .crash("sn-c", at=4.0, restart_after=2.0)
        )

    Determinism: jitter is drawn from ``random.Random(seed)`` *at build
    time*, in builder-call order. Same seed + same calls ⇒ identical
    ``events`` lists (and therefore identical replays).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self.events: list[FaultEvent] = []

    # -- generic -----------------------------------------------------------
    def add(self, at: float, kind: str, target: str, value: Any = None) -> "FaultPlan":
        if at < 0:
            raise FaultError(f"event time must be non-negative, got {at}")
        if kind not in KINDS:
            raise FaultError(f"unknown fault kind {kind!r}")
        self.events.append(FaultEvent(at=at, kind=kind, target=target, value=value))
        return self

    # -- link faults -------------------------------------------------------
    def link_down(
        self, link: str, at: float, duration: Optional[float] = None
    ) -> "FaultPlan":
        """Fail a link at ``at``; restore after ``duration`` if given."""
        self.add(at, "link_down", link)
        if duration is not None:
            self.add(at + duration, "link_up", link)
        return self

    def link_up(self, link: str, at: float) -> "FaultPlan":
        return self.add(at, "link_up", link)

    def link_flap(
        self,
        link: str,
        at: float,
        period: float,
        count: int,
        duty: float = 0.5,
        jitter: float = 0.0,
    ) -> "FaultPlan":
        """``count`` down/up cycles of length ``period`` starting at ``at``.

        The link is down for ``duty`` of each period. ``jitter`` shifts
        each transition by up to ±``jitter`` seconds, drawn from the plan
        seed (deterministic per seed).
        """
        if period <= 0 or count < 1 or not 0.0 < duty < 1.0:
            raise FaultError("flap needs period > 0, count >= 1, 0 < duty < 1")
        for i in range(count):
            start = at + i * period
            down_at = start + (self._rng.uniform(-jitter, jitter) if jitter else 0.0)
            up_at = (
                start
                + duty * period
                + (self._rng.uniform(-jitter, jitter) if jitter else 0.0)
            )
            self.add(max(0.0, down_at), "link_down", link)
            self.add(max(0.0, up_at, down_at + 1e-9), "link_up", link)
        return self

    def set_loss(
        self, link: str, at: float, rate: float, seed: Optional[int] = None
    ) -> "FaultPlan":
        """Set a link's loss rate (optionally reseeding its drop RNG first)."""
        if seed is not None:
            self.add(at, "reseed", link, seed)
        return self.add(at, "loss_rate", link, rate)

    def loss_ramp(
        self,
        link: str,
        at: float,
        peak: float,
        duration: float,
        steps: int = 4,
        clear_after: bool = True,
    ) -> "FaultPlan":
        """Ramp a link's loss rate linearly from 0 to ``peak`` over ``duration``.

        The rate rises in ``steps`` increments; if ``clear_after``, loss is
        reset to 0 at ``at + duration``.
        """
        if not 0.0 < peak <= 1.0 or duration <= 0 or steps < 1:
            raise FaultError("ramp needs 0 < peak <= 1, duration > 0, steps >= 1")
        for k in range(1, steps + 1):
            self.add(
                at + duration * (k - 1) / steps, "loss_rate", link, peak * k / steps
            )
        if clear_after:
            self.add(at + duration, "loss_rate", link, 0.0)
        return self

    def delay_spike(
        self, link: str, at: float, extra: float, duration: float
    ) -> "FaultPlan":
        """Raise a link's latency by ``extra`` seconds for ``duration``.

        Packets queued behind the spike arrive bunched together when it
        ends — the "clock-skewed burst" shape that stresses reorder and
        keepalive tolerance.
        """
        if extra <= 0 or duration <= 0:
            raise FaultError("delay spike needs extra > 0 and duration > 0")
        self.add(at, "delay_spike_start", link, extra)
        self.add(at + duration, "delay_spike_end", link, extra)
        return self

    # -- node faults -------------------------------------------------------
    def crash(
        self, node: str, at: float, restart_after: Optional[float] = None
    ) -> "FaultPlan":
        """Crash a node (links down, frames dropped, volatile state lost)."""
        self.add(at, "crash", node)
        if restart_after is not None:
            self.add(at + restart_after, "restart", node)
        return self

    def restart(self, node: str, at: float) -> "FaultPlan":
        return self.add(at, "restart", node)

    # -- service faults ----------------------------------------------------
    def service_slowdown(
        self,
        node: str,
        service_id: int,
        at: float,
        extra: float,
        duration: Optional[float] = None,
    ) -> "FaultPlan":
        """Slow one service's slow-path handling on ``node`` by ``extra``
        seconds per punt; clears after ``duration`` if given.

        A slowdown beyond the terminus punt deadline makes every punt time
        out — the brownout shape that trips a circuit breaker without the
        service ever erroring.
        """
        if extra <= 0:
            raise FaultError("service slowdown needs extra > 0")
        self.add(at, "service_slowdown", node, (int(service_id), float(extra)))
        if duration is not None:
            self.add(at + duration, "service_recover", node, int(service_id))
        return self

    def service_hang(
        self,
        node: str,
        service_id: int,
        at: float,
        duration: Optional[float] = None,
    ) -> "FaultPlan":
        """Hang one service on ``node``: every punt times out at its
        deadline until ``service_recover`` (scheduled after ``duration``
        when given) clears the fault."""
        self.add(at, "service_hang", node, int(service_id))
        if duration is not None:
            self.add(at + duration, "service_recover", node, int(service_id))
        return self

    def service_recover(
        self, node: str, service_id: int, at: float
    ) -> "FaultPlan":
        return self.add(at, "service_recover", node, int(service_id))

    def punt_storm(
        self,
        node: str,
        at: float,
        period: float = 0.01,
        count: int = 1,
        fraction: float = 1.0,
    ) -> "FaultPlan":
        """Repeatedly evict ``fraction`` of ``node``'s decision cache.

        ``count`` evictions spaced ``period`` apart: each wipe forces the
        traffic behind it back onto the slow path at once — the cold-flow
        storm that stresses miss coalescing and admission control.
        """
        if period <= 0 or count < 1 or not 0.0 < fraction <= 1.0:
            raise FaultError(
                "punt storm needs period > 0, count >= 1, 0 < fraction <= 1"
            )
        for i in range(count):
            self.add(at + i * period, "punt_storm", node, fraction)
        return self

    # -- partitions --------------------------------------------------------
    def partition(
        self,
        group_a: list[str],
        group_b: list[str],
        at: float,
        duration: Optional[float] = None,
    ) -> "FaultPlan":
        """Down every registered link that straddles the two node groups."""
        value = (tuple(sorted(group_a)), tuple(sorted(group_b)))
        target = f"{'+'.join(value[0])}|{'+'.join(value[1])}"
        self.add(at, "partition", target, value)
        if duration is not None:
            self.add(at + duration, "heal", target, value)
        return self

    # -- introspection -----------------------------------------------------
    def sorted_events(self) -> list[FaultEvent]:
        """Events in replay order (time, then insertion order)."""
        indexed = sorted(
            enumerate(self.events), key=lambda pair: (pair[1].at, pair[0])
        )
        return [event for _, event in indexed]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, events={len(self.events)})"


class FaultInjector:
    """Replays a :class:`FaultPlan` against concrete links and nodes.

    The injector keeps name → object registries (filled by
    :meth:`register_link` / :meth:`register_node`, or wholesale by
    :meth:`bind`), schedules every plan event on the simulator when
    :meth:`arm` is called, and appends ``(time, kind, target, value)`` to
    :attr:`trace` as each event fires. :meth:`trace_digest` hashes the
    trace for cheap bit-determinism assertions.
    """

    def __init__(self, sim: Simulator, plan: FaultPlan) -> None:
        self.sim = sim
        self.plan = plan
        self._links: dict[str, Link] = {}
        self._nodes: dict[str, NetNode] = {}
        self.trace: list[tuple[float, str, str, Any]] = []
        self._armed = False

    # -- binding -----------------------------------------------------------
    def register_link(self, name: str, link: Link) -> None:
        self._links[name] = link

    def register_node(self, name: str, node: NetNode) -> None:
        self._nodes[name] = node

    def bind(self, net: Any) -> "FaultInjector":
        """Register every SN (by name and address) and every SN-adjacent
        link of an :class:`~repro.core.federation.InterEdge` deployment.

        Host access links are registered too (hosts appear under their
        node names), so plans can fault last-hop pipes.
        """
        seen: set[int] = set()
        for sn in net.all_sns():
            self._nodes[sn.name] = sn
            self._nodes[sn.address] = sn
            for link in sn.links:
                if id(link) in seen:
                    continue
                seen.add(id(link))
                self._links[link_name(link.a, link.b)] = link
        for host in getattr(net, "hosts", {}).values():
            self._nodes[host.name] = host
            self._nodes[host.address] = host
        return self

    # -- arming ------------------------------------------------------------
    def arm(self) -> int:
        """Schedule every plan event; returns the number scheduled."""
        if self._armed:
            raise FaultError("injector is already armed")
        self._armed = True
        count = 0
        for event in self.plan.sorted_events():
            when = max(event.at, self.sim.now)
            self.sim.schedule_at(when, self._fire, event)
            count += 1
        return count

    # -- firing ------------------------------------------------------------
    def _link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError:
            raise FaultError(f"no link registered as {name!r}") from None

    def _node(self, name: str) -> NetNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise FaultError(f"no node registered as {name!r}") from None

    def _env(self, name: str) -> Any:
        env = getattr(self._node(name), "env", None)
        if env is None:
            raise FaultError(
                f"node {name!r} has no execution environment for service faults"
            )
        return env

    def _fire(self, event: FaultEvent) -> None:
        kind, target, value = event.kind, event.target, event.value
        if kind == "link_down":
            self._link(target).set_down()
        elif kind == "link_up":
            self._link(target).set_up()
        elif kind == "loss_rate":
            self._link(target).loss_rate = float(value)
        elif kind == "reseed":
            self._link(target).reseed(int(value))
        elif kind == "delay_spike_start":
            self._link(target).latency += float(value)
        elif kind == "delay_spike_end":
            link = self._link(target)
            link.latency = max(0.0, link.latency - float(value))
        elif kind == "crash":
            node = self._node(target)
            crash = getattr(node, "crash", None)
            if crash is not None:
                crash()
            else:
                node.fail()
        elif kind == "restart":
            node = self._node(target)
            restart = getattr(node, "restart", None)
            if restart is not None:
                restart()
            else:
                node.recover()
        elif kind == "service_slowdown":
            service_id, extra = value
            self._env(target).inject_slowdown(int(service_id), float(extra))
        elif kind == "service_hang":
            self._env(target).inject_hang(int(value))
        elif kind == "service_recover":
            self._env(target).clear_service_fault(int(value))
        elif kind == "punt_storm":
            node = self._node(target)
            cache = getattr(node, "cache", None)
            if cache is None:
                raise FaultError(
                    f"node {target!r} has no decision cache to storm"
                )
            cache.evict_random_fraction(float(value))
        elif kind in ("partition", "heal"):
            group_a, group_b = value
            names_a, names_b = set(group_a), set(group_b)
            for link in self._straddling(names_a, names_b):
                if kind == "partition":
                    link.set_down()
                else:
                    link.set_up()
        self.trace.append((self.sim.now, kind, target, value))

    def _straddling(self, names_a: set, names_b: set) -> list[Link]:
        links = []
        seen: set[int] = set()
        for link in self._links.values():
            if id(link) in seen:
                continue
            seen.add(id(link))
            ends = {link.a.name, link.b.name}
            if ends & names_a and ends & names_b:
                links.append(link)
        return links

    def trace_digest(self) -> str:
        """SHA-256 over the fired-event trace (bit-determinism checks)."""
        return hashlib.sha256(repr(self.trace).encode()).hexdigest()

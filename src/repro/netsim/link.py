"""Point-to-point links with latency, bandwidth, loss, and MTU.

A :class:`Link` connects two :class:`~repro.netsim.node.NetNode` interfaces.
Frames are any objects exposing a ``wire_size`` attribute (bytes on the
wire); delivery is scheduled on the simulator after propagation plus
serialization delay, with optional random loss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from .engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import NetNode

DEFAULT_MTU = 1500


class LinkError(Exception):
    """Raised on invalid link operations (e.g. MTU exceeded)."""


@dataclass
class LinkStats:
    """Counters kept per link direction."""

    frames_sent: int = 0
    frames_delivered: int = 0
    frames_dropped_loss: int = 0
    frames_dropped_down: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0


def frame_size(frame: Any) -> int:
    """Size in bytes of a frame on the wire."""
    size = getattr(frame, "wire_size", None)
    if size is None:
        if isinstance(frame, (bytes, bytearray)):
            return len(frame)
        raise LinkError(f"frame {frame!r} has no wire_size")
    return int(size)


class Link:
    """A bidirectional point-to-point link between two nodes.

    Args:
        sim: the simulator driving delivery events.
        a, b: the endpoint nodes.
        latency: one-way propagation delay in seconds.
        bandwidth_bps: link rate in bits/sec; 0 means infinite.
        loss_rate: independent per-frame drop probability.
        mtu: maximum frame size in bytes.
        rng: random source for loss decisions (deterministic tests pass a
            seeded ``random.Random``).
    """

    def __init__(
        self,
        sim: Simulator,
        a: "NetNode",
        b: "NetNode",
        latency: float = 0.001,
        bandwidth_bps: float = 0.0,
        loss_rate: float = 0.0,
        mtu: int = DEFAULT_MTU,
        rng: Optional[random.Random] = None,
    ) -> None:
        if latency < 0:
            raise LinkError("latency must be non-negative")
        self.sim = sim
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.loss_rate = loss_rate
        self.mtu = mtu
        self.up = True
        self.down_transitions = 0
        self._rng = rng or random.Random(0)
        # Earliest time each direction's transmitter is free again, used to
        # model serialization at the configured bandwidth.
        self._tx_free_at = {a: 0.0, b: 0.0}
        # Per-direction open burst: frames sent back-to-back that share one
        # arrival time ride a single coalesced delivery event instead of
        # one event per frame (see :meth:`transmit`).
        self._pending_burst: dict["NetNode", Optional[list]] = {a: None, b: None}
        self.stats = {a: LinkStats(), b: LinkStats()}
        a.attach_link(self)
        b.attach_link(self)

    def other(self, node: "NetNode") -> "NetNode":
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise LinkError(f"{node!r} is not attached to this link")

    @property
    def loss_rate(self) -> float:
        """Independent per-frame drop probability, settable in [0, 1].

        Fault injection (and tests) adjust loss mid-run through this
        setter; pair with :meth:`reseed` for reproducible drop patterns.
        """
        return self._loss_rate

    @loss_rate.setter
    def loss_rate(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise LinkError("loss_rate must be in [0, 1]")
        self._loss_rate = rate

    def reseed(self, seed: int) -> None:
        """Replace the loss RNG with a fresh seeded one (deterministic runs)."""
        self._rng = random.Random(seed)

    def set_loss(self, rate: float, seed: Optional[int] = None) -> None:
        """Set the loss rate, optionally reseeding the drop RNG atomically."""
        if seed is not None:
            self.reseed(seed)
        self.loss_rate = rate

    def set_down(self) -> None:
        """Fail the link; in-flight frames still arrive (already on the wire)."""
        if self.up:
            self.down_transitions += 1
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def transmit(self, frame: Any, src: "NetNode") -> bool:
        """Send ``frame`` from ``src`` toward the other endpoint.

        Returns True if the frame was put on the wire (it may still be lost).
        """
        dst = self.other(src)
        stats = self.stats[src]
        size = frame_size(frame)
        if size > self.mtu:
            raise LinkError(f"frame of {size}B exceeds MTU {self.mtu}")
        if not self.up:
            stats.frames_dropped_down += 1
            return False
        stats.frames_sent += 1
        stats.bytes_sent += size
        if self._loss_rate and self._rng.random() < self._loss_rate:
            stats.frames_dropped_loss += 1
            return False
        serialization = (
            (size * 8) / self.bandwidth_bps if self.bandwidth_bps > 0 else 0.0
        )
        start = max(self.sim.now, self._tx_free_at[src])
        done = start + serialization
        self._tx_free_at[src] = done
        arrival = done + self.latency
        # Coalesce back-to-back frames into one delivery event: on an
        # infinite-rate link a burst all arrives at the same instant, so a
        # single simulator event delivers the whole burst (the receiver may
        # then batch-process it). Frames whose arrival differs — bandwidth
        # serialization spreads them out — start a new burst.
        pending = self._pending_burst[src]
        if pending is not None and pending[0] == arrival:
            pending[1].append(frame)
            pending[2] += size
        else:
            pending = [arrival, [frame], size]
            self._pending_burst[src] = pending
            # Fire-and-forget: burst delivery is never cancelled, so skip
            # the EventHandle allocation on the per-burst hot path.
            self.sim.post_at(arrival, self._deliver_burst, src, dst, pending)
        return True

    def _deliver_burst(
        self, src: "NetNode", dst: "NetNode", burst: list
    ) -> None:
        if self._pending_burst[src] is burst:
            self._pending_burst[src] = None
        _, frames, size = burst
        stats = self.stats[src]
        stats.frames_delivered += len(frames)
        stats.bytes_delivered += size
        if len(frames) == 1:
            dst.receive_frame(frames[0], self)
        else:
            dst.receive_burst(frames, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.a.name}<->{self.b.name}, lat={self.latency}s, "
            f"bw={self.bandwidth_bps}bps)"
        )

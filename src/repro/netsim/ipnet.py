"""AS-level IP underlay with path-vector routing and hijack injection.

The InterEdge rides on the existing Internet. For the security experiment
(prefix hijacking, §6.2) we need an underlay in which a malicious AS can
announce a victim's prefix and attract traffic. This module implements a
small BGP-like path-vector routing model over an AS graph:

* ASes originate prefixes and propagate announcements to neighbors.
* Route selection prefers shortest AS path; ties break on lowest AS number
  (a stand-in for the full BGP decision process).
* A hijacker can originate someone else's prefix, attracting the traffic of
  every AS that is path-length-closer to the hijacker than to the victim.

It deliberately omits business relationships (Gao-Rexford) — the hijack
experiment only needs "some ASes are fooled", which shortest-path capture
reproduces; see DESIGN.md §4.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Iterable, Optional

import networkx as nx


class IPNetError(Exception):
    """Raised for invalid underlay configuration."""


@dataclass(frozen=True)
class Route:
    """A selected route for a prefix at some AS."""

    prefix: ipaddress.IPv4Network
    as_path: tuple[int, ...]  # first element is the next hop, last the origin

    @property
    def origin(self) -> int:
        return self.as_path[-1]

    @property
    def next_hop(self) -> int:
        return self.as_path[0]

    @property
    def length(self) -> int:
        return len(self.as_path)


@dataclass
class AutonomousSystem:
    """One AS: a routing table plus the prefixes it legitimately owns."""

    asn: int
    owned_prefixes: set[ipaddress.IPv4Network] = field(default_factory=set)
    # prefix -> selected Route (routes to owned prefixes are local, no path)
    rib: dict[ipaddress.IPv4Network, Route] = field(default_factory=dict)


def _better(candidate: Route, incumbent: Optional[Route]) -> bool:
    if incumbent is None:
        return True
    if candidate.length != incumbent.length:
        return candidate.length < incumbent.length
    return candidate.origin < incumbent.origin


class ASGraph:
    """An AS-level topology with path-vector route computation."""

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self.ases: dict[int, AutonomousSystem] = {}
        # prefix -> set of origin ASNs currently announcing it
        self._origins: dict[ipaddress.IPv4Network, set[int]] = {}

    def add_as(self, asn: int) -> AutonomousSystem:
        if asn in self.ases:
            raise IPNetError(f"AS{asn} already exists")
        system = AutonomousSystem(asn)
        self.ases[asn] = system
        self.graph.add_node(asn)
        return system

    def peer(self, a: int, b: int) -> None:
        if a not in self.ases or b not in self.ases:
            raise IPNetError("both ASes must exist before peering")
        self.graph.add_edge(a, b)

    def originate(self, asn: int, prefix: str | ipaddress.IPv4Network) -> None:
        """AS ``asn`` announces ``prefix`` as its own (legitimately or not)."""
        net = ipaddress.IPv4Network(prefix)
        self.ases[asn].owned_prefixes.add(net)
        self._origins.setdefault(net, set()).add(asn)

    def withdraw(self, asn: int, prefix: str | ipaddress.IPv4Network) -> None:
        net = ipaddress.IPv4Network(prefix)
        self.ases[asn].owned_prefixes.discard(net)
        origins = self._origins.get(net)
        if origins:
            origins.discard(asn)

    def converge(self) -> None:
        """Recompute every AS's RIB from scratch (BFS from each origin).

        Equivalent to full path-vector convergence with shortest-path
        selection; rebuilt wholesale since topologies here are small.
        """
        for system in self.ases.values():
            system.rib.clear()
        for prefix, origins in self._origins.items():
            for origin in sorted(origins):
                lengths = nx.single_source_shortest_path(self.graph, origin)
                for asn, path in lengths.items():
                    if asn == origin:
                        continue
                    # path is origin..asn; the AS path seen at asn is reversed
                    as_path = tuple(reversed(path[:-1]))
                    candidate = Route(prefix=prefix, as_path=as_path)
                    incumbent = self.ases[asn].rib.get(prefix)
                    if _better(candidate, incumbent):
                        self.ases[asn].rib[prefix] = candidate

    def resolve_origin(self, asn: int, address: str) -> Optional[int]:
        """Which origin AS does ``asn``'s best route for ``address`` lead to?

        Longest-prefix match over the AS's RIB; returns None if unroutable.
        Local ownership wins over any learned route.
        """
        addr = ipaddress.IPv4Address(address)
        system = self.ases[asn]
        for prefix in system.owned_prefixes:
            if addr in prefix:
                return asn
        best: Optional[Route] = None
        best_len = -1
        for prefix, route in system.rib.items():
            if addr in prefix and prefix.prefixlen > best_len:
                best = route
                best_len = prefix.prefixlen
        return best.origin if best else None

    def capture_fraction(
        self, victim: int, hijacker: int, prefix: str, observers: Iterable[int]
    ) -> float:
        """Fraction of observer ASes whose traffic to ``prefix`` is captured.

        Call after :meth:`converge` with the hijack announcement in place.
        """
        observers = list(observers)
        if not observers:
            return 0.0
        probe = str(next(ipaddress.IPv4Network(prefix).hosts()))
        captured = sum(
            1
            for asn in observers
            if asn not in (victim, hijacker)
            and self.resolve_origin(asn, probe) == hijacker
        )
        eligible = sum(1 for asn in observers if asn not in (victim, hijacker))
        return captured / eligible if eligible else 0.0


def build_random_as_graph(
    n_ases: int, degree: int = 3, seed: int = 0
) -> ASGraph:
    """A connected random AS graph (Barabási–Albert preferential attachment,
    which matches the Internet's heavy-tailed degree distribution)."""
    if n_ases < degree + 1:
        raise IPNetError("need more ASes than the attachment degree")
    raw = nx.barabasi_albert_graph(n_ases, degree, seed=seed)
    asgraph = ASGraph()
    for node in raw.nodes:
        asgraph.add_as(int(node))
    for a, b in raw.edges:
        asgraph.peer(int(a), int(b))
    return asgraph

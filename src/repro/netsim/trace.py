"""Packet tracing and latency/throughput statistics.

Traces record (time, node, event, packet-ish) tuples; statistics helpers
summarize per-flow latency distributions, which the QoS and inter-domain
benchmarks report.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional


@dataclass(frozen=True)
class TraceRecord:
    time: float
    node: str
    event: str  # e.g. "tx", "rx", "drop", "cache_hit", "service"
    detail: Any = None


class PacketTrace:
    """An append-only event trace with simple query helpers."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def record(self, time: float, node: str, event: str, detail: Any = None) -> None:
        self.records.append(TraceRecord(time, node, event, detail))

    def events(self, event: Optional[str] = None, node: Optional[str] = None):
        for rec in self.records:
            if event is not None and rec.event != event:
                continue
            if node is not None and rec.node != node:
                continue
            yield rec

    def count(self, event: Optional[str] = None, node: Optional[str] = None) -> int:
        return sum(1 for _ in self.events(event, node))

    def clear(self) -> None:
        self.records.clear()


@dataclass
class LatencySample:
    sent_at: float
    received_at: float

    @property
    def latency(self) -> float:
        return self.received_at - self.sent_at


@dataclass
class FlowStats:
    """Aggregated delivery statistics for one logical flow."""

    samples: list[LatencySample] = field(default_factory=list)
    bytes_delivered: int = 0
    packets_sent: int = 0

    def add(self, sent_at: float, received_at: float, size: int = 0) -> None:
        self.samples.append(LatencySample(sent_at, received_at))
        self.bytes_delivered += size

    @property
    def packets_delivered(self) -> int:
        return len(self.samples)

    @property
    def delivery_ratio(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.packets_delivered / self.packets_sent

    def latency_summary(self) -> dict[str, float]:
        if not self.samples:
            return {"count": 0}
        lats = sorted(s.latency for s in self.samples)
        return {
            "count": len(lats),
            "min": lats[0],
            "max": lats[-1],
            "mean": statistics.fmean(lats),
            "median": percentile(lats, 50.0),
            "p99": percentile(lats, 99.0),
        }

    def throughput_bps(self, duration: float) -> float:
        if duration <= 0:
            return 0.0
        return self.bytes_delivered * 8 / duration


def percentile(sorted_values: list[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        raise ValueError("empty sample")
    if not 0 <= pct <= 100:
        raise ValueError("pct must be in [0, 100]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (pct / 100.0) * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    # Formulated as lo + frac*(hi-lo) so equal neighbors interpolate to
    # exactly themselves (no floating-point excursion past the bounds).
    return sorted_values[lo] + frac * (sorted_values[hi] - sorted_values[lo])


def summarize(values: Iterable[float]) -> dict[str, float]:
    """Generic distribution summary used in benchmark reports."""
    ordered = sorted(values)
    if not ordered:
        return {"count": 0}
    return {
        "count": len(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "mean": statistics.fmean(ordered),
        "median": percentile(ordered, 50.0),
        "p90": percentile(ordered, 90.0),
        "p99": percentile(ordered, 99.0),
    }

"""Topology construction helpers.

Builds the node/link graphs used by integration tests, examples, and
benchmarks: stars (hosts around an SN), edomain meshes, and arbitrary
graphs loaded from ``networkx``.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional

import networkx as nx

from .engine import Simulator
from .link import Link
from .node import NetNode


class Topology:
    """A named collection of nodes and the links between them."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: dict[str, NetNode] = {}
        self.links: list[Link] = []

    def add_node(self, node: NetNode) -> NetNode:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def node(self, name: str) -> NetNode:
        return self.nodes[name]

    def connect(
        self,
        a: NetNode | str,
        b: NetNode | str,
        latency: float = 0.001,
        bandwidth_bps: float = 0.0,
        loss_rate: float = 0.0,
        mtu: int = 1500,
        rng: Optional[random.Random] = None,
    ) -> Link:
        node_a = self.nodes[a] if isinstance(a, str) else a
        node_b = self.nodes[b] if isinstance(b, str) else b
        link = Link(
            self.sim,
            node_a,
            node_b,
            latency=latency,
            bandwidth_bps=bandwidth_bps,
            loss_rate=loss_rate,
            mtu=mtu,
            rng=rng,
        )
        self.links.append(link)
        return link

    def to_networkx(self) -> nx.Graph:
        """Export as a ``networkx`` graph with latency edge weights."""
        graph = nx.Graph()
        for name in self.nodes:
            graph.add_node(name)
        for link in self.links:
            graph.add_edge(link.a.name, link.b.name, latency=link.latency)
        return graph

    def shortest_path(self, src: str, dst: str) -> list[str]:
        """Latency-weighted shortest node-name path."""
        return nx.shortest_path(self.to_networkx(), src, dst, weight="latency")


def build_star(
    sim: Simulator,
    center_factory: Callable[[Simulator, str], NetNode],
    leaf_factory: Callable[[Simulator, str], NetNode],
    n_leaves: int,
    latency: float = 0.001,
    name_prefix: str = "leaf",
) -> Topology:
    """A star: one center node and ``n_leaves`` leaves."""
    topo = Topology(sim)
    center = topo.add_node(center_factory(sim, "center"))
    for i in range(n_leaves):
        leaf = topo.add_node(leaf_factory(sim, f"{name_prefix}{i}"))
        topo.connect(center, leaf, latency=latency)
    return topo


def build_full_mesh(
    sim: Simulator,
    factory: Callable[[Simulator, str], NetNode],
    names: Iterable[str],
    latency: float = 0.005,
) -> Topology:
    """A full mesh over the given node names (used for edomain peering)."""
    topo = Topology(sim)
    created = [topo.add_node(factory(sim, name)) for name in names]
    for i, a in enumerate(created):
        for b in created[i + 1 :]:
            topo.connect(a, b, latency=latency)
    return topo


def build_line(
    sim: Simulator,
    factory: Callable[[Simulator, str], NetNode],
    n: int,
    latency: float = 0.001,
    name_prefix: str = "n",
) -> Topology:
    """A chain of ``n`` nodes — useful for pass-through SN scenarios."""
    topo = Topology(sim)
    created = [topo.add_node(factory(sim, f"{name_prefix}{i}")) for i in range(n)]
    for a, b in zip(created, created[1:]):
        topo.connect(a, b, latency=latency)
    return topo

"""Discrete-event simulation engine.

The InterEdge reproduction runs on two substrates: real wall-clock
microbenchmarks (for Table 1) and a simulated network (for everything that
needs topology, latency, and many nodes). This module provides the simulated
substrate's core: a deterministic event loop with a virtual clock.

The engine is deliberately minimal and synchronous. Events are callbacks
scheduled at absolute virtual times; ties are broken by insertion order so
runs are fully reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        self._event.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = _ScheduledEvent(self._now + delay, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self._now}"
            )
        event = _ScheduledEvent(when, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in time order.

        Args:
            until: stop once virtual time would exceed this (the clock is
                advanced to ``until`` on return).
            max_events: stop after this many events (a runaway guard).

        Returns:
            The number of events processed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.callback(*event.args)
                processed += 1
                self._events_processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return processed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        return self.run(max_events=max_events)


class Timer:
    """A restartable one-shot timer on a :class:`Simulator`.

    Used by protocol state machines (retransmits, keepalives, rekeys).
    """

    def __init__(
        self, sim: Simulator, callback: Callable[[], None]
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        self.stop()
        self._handle = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class PeriodicTask:
    """Repeatedly invoke a callback at a fixed virtual-time interval."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        jitter: float = 0.0,
        rng=None,
    ) -> None:
        if interval <= 0:
            raise SimulationError("interval must be positive")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._jitter = jitter
        self._rng = rng
        self._handle: Optional[EventHandle] = None
        self._stopped = True

    def start(self, initial_delay: Optional[float] = None) -> None:
        self._stopped = False
        delay = self._interval if initial_delay is None else initial_delay
        self._handle = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_delay(self) -> float:
        if self._jitter and self._rng is not None:
            return self._interval + self._rng.uniform(-self._jitter, self._jitter)
        return self._interval

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._sim.schedule(self._next_delay(), self._tick)

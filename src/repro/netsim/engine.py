"""Discrete-event simulation engine.

The InterEdge reproduction runs on two substrates: real wall-clock
microbenchmarks (for Table 1) and a simulated network (for everything that
needs topology, latency, and many nodes). This module provides the simulated
substrate's core: a deterministic event loop with a virtual clock.

The engine is deliberately minimal and synchronous. Events are callbacks
scheduled at absolute virtual times; ties are broken by insertion order so
runs are fully reproducible.

Event representation
--------------------

A queued event is a plain 4-slot list — ``[time, seq, callback, args]`` —
not a dataclass: ``heapq`` then compares bare floats/ints directly instead
of dispatching through ``@dataclass(order=True)``'s generated ``__lt__``
(which builds a comparison tuple per probe), and scheduling allocates one
list instead of an object plus its field storage. ``seq`` is unique per
event, so comparison never reaches the callback slot.

Cancellation is **lazy**: :meth:`EventHandle.cancel` nulls the entry's
callback slot and the dead entry stays queued until the run loop pops it
— O(1) cancel, no heap surgery. The engine counts dead entries and
**compacts** the heap (filter + re-heapify) whenever they exceed both a
floor and half the queue, so a workload that arms and cancels timers
continuously (retransmit timers, keepalive rescheduling, fault-plan
churn) cannot grow the heap without bound. :attr:`Simulator.pending`
reports only live events; the raw queue length (live + not-yet-reaped
cancelled) stays available as :attr:`Simulator.pending_raw`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

# Heap-entry slot indices (a queued event is [time, seq, callback, args]).
_TIME = 0
_SEQ = 1
_CALLBACK = 2
_ARGS = 3

#: Compaction triggers only above this many dead entries (tiny heaps never
#: pay a rebuild) *and* when dead entries outnumber live ones.
_COMPACT_FLOOR = 64


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel."""

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: list) -> None:
        self._sim = sim
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is None

    def cancel(self) -> None:
        self._sim.cancel_entry(self._entry)


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[list] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._cancelled = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def compactions(self) -> int:
        """Heap compaction passes performed (an observability counter:
        high values mean heavy cancellation churn from timers)."""
        return self._compactions

    @property
    def pending(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return len(self._heap) - self._cancelled

    @property
    def pending_raw(self) -> int:
        """Raw queue length: live events plus not-yet-reaped cancelled ones."""
        return len(self._heap)

    # -- scheduling -------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        entry = [self._now + delay, next(self._seq), callback, args]
        heapq.heappush(self._heap, entry)
        return EventHandle(self, entry)

    def schedule_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self._now}"
            )
        entry = [when, next(self._seq), callback, args]
        heapq.heappush(self._heap, entry)
        return EventHandle(self, entry)

    def post(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`EventHandle`.

        The hot datapath (link burst delivery, terminus processing delays)
        never cancels its events; skipping the handle saves one allocation
        per scheduled event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._heap, [self._now + delay, next(self._seq), callback, args]
        )

    def post_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`EventHandle`."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self._now}"
            )
        heapq.heappush(self._heap, [when, next(self._seq), callback, args])

    # -- cancellation -----------------------------------------------------
    def cancel_entry(self, entry: list) -> None:
        """Lazily cancel a queued entry (idempotent).

        The entry stays on the heap with its callback nulled; the run loop
        (or a compaction) reaps it. Exposed for :class:`EventHandle` and
        the entry-reusing timers below; other modules go through
        :meth:`EventHandle.cancel`.
        """
        if entry[_CALLBACK] is not None:
            entry[_CALLBACK] = None
            entry[_ARGS] = ()
            self._cancelled += 1
            if (
                self._cancelled > _COMPACT_FLOOR
                and self._cancelled * 2 > len(self._heap)
            ):
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (amortized O(live))."""
        self._heap = [e for e in self._heap if e[_CALLBACK] is not None]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self._compactions += 1

    # -- run loop ---------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in time order.

        Args:
            until: stop once virtual time would exceed this (the clock is
                advanced to ``until`` on return).
            max_events: stop after this many events (a runaway guard).

        Returns:
            The number of events processed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        try:
            while heap:
                if max_events is not None and processed >= max_events:
                    break
                entry = heap[0]
                callback = entry[_CALLBACK]
                if callback is None:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                when = entry[_TIME]
                if until is not None and when > until:
                    break
                pop(heap)
                # Read every field before invoking: the callback may reuse
                # the popped entry to re-arm itself (see Timer/PeriodicTask).
                args = entry[_ARGS]
                self._now = when
                callback(*args)
                processed += 1
                self._events_processed += 1
                heap = self._heap  # a callback may have triggered compaction
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return processed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        return self.run(max_events=max_events)

    # -- entry reuse (engine-internal) ------------------------------------
    def _push_entry(
        self, entry: list, delay: float, callback: Callable[..., None]
    ) -> list:
        """(Re)initialize ``entry`` and queue it; returns the entry.

        Only safe for an entry the run loop has already popped (i.e. one
        whose callback just fired): the timers below recycle their own
        entry so a periodic tick or timer re-arm allocates nothing.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        entry[_TIME] = self._now + delay
        entry[_SEQ] = next(self._seq)
        entry[_CALLBACK] = callback
        entry[_ARGS] = ()
        heapq.heappush(self._heap, entry)
        return entry


class Timer:
    """A restartable one-shot timer on a :class:`Simulator`.

    Used by protocol state machines (retransmits, keepalives, rekeys).
    Re-arming after a fire reuses the fired heap entry — a retransmit
    timer that restarts on every packet allocates nothing per packet.
    """

    __slots__ = ("_sim", "_callback", "_entry", "_spare")

    def __init__(
        self, sim: Simulator, callback: Callable[[], None]
    ) -> None:
        self._sim = sim
        self._callback = callback
        #: The queued heap entry while armed, else None.
        self._entry: Optional[list] = None
        #: A fired (popped) entry available for reuse.
        self._spare: Optional[list] = None

    @property
    def armed(self) -> bool:
        return self._entry is not None and self._entry[_CALLBACK] is not None

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        self.stop()
        spare = self._spare
        if spare is not None:
            self._spare = None
            self._entry = self._sim._push_entry(spare, delay, self._fire)
        else:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule in the past (delay={delay})"
                )
            entry = [self._sim._now + delay, next(self._sim._seq), self._fire, ()]
            heapq.heappush(self._sim._heap, entry)
            self._entry = entry

    def stop(self) -> None:
        if self._entry is not None:
            # The entry stays queued until reaped; it cannot be reused.
            self._sim.cancel_entry(self._entry)
            self._entry = None

    def _fire(self) -> None:
        entry = self._entry
        self._entry = None
        if entry is not None:
            self._spare = entry  # popped by the run loop: safe to recycle
        self._callback()


class PeriodicTask:
    """Repeatedly invoke a callback at a fixed virtual-time interval.

    The steady-state tick → re-arm cycle recycles the single heap entry the
    run loop just popped, so a long soak with many periodic monitors does
    not allocate per tick.
    """

    __slots__ = (
        "_sim",
        "_interval",
        "_callback",
        "_jitter",
        "_rng",
        "_entry",
        "_stopped",
    )

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        jitter: float = 0.0,
        rng: Any = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError("interval must be positive")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._jitter = jitter
        self._rng = rng
        self._entry: Optional[list] = None
        self._stopped = True

    def start(self, initial_delay: Optional[float] = None) -> None:
        self._stopped = False
        delay = self._interval if initial_delay is None else initial_delay
        sim = self._sim
        entry = [sim._now + delay, next(sim._seq), self._tick, ()]
        heapq.heappush(sim._heap, entry)
        self._entry = entry

    def stop(self) -> None:
        self._stopped = True
        if self._entry is not None:
            self._sim.cancel_entry(self._entry)
            self._entry = None

    def _next_delay(self) -> float:
        if self._jitter and self._rng is not None:
            return self._interval + self._rng.uniform(-self._jitter, self._jitter)
        return self._interval

    def _tick(self) -> None:
        if self._stopped:
            return
        entry = self._entry
        self._callback()
        if not self._stopped:
            if self._entry is entry and entry is not None:
                # Normal cadence: the run loop popped this entry; recycle it.
                self._entry = self._sim._push_entry(
                    entry, self._next_delay(), self._tick
                )
            # else: the callback restarted/stopped us; respect its schedule.

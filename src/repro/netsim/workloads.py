"""Traffic workload generators.

Benchmarks and integration tests need realistic offered load: constant
bit rate, Poisson arrivals, bursty on-off sources, and Zipf-skewed
content request streams (the CDN workload). Generators are deterministic
given a seed and drive any callable sink on the simulator clock.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

import numpy as np

from .engine import Simulator

#: A sink receives (sequence_number, size_bytes) at each generation event.
TrafficSink = Callable[[int, int], Any]


class WorkloadError(Exception):
    """Raised for invalid generator configuration."""


class CBRSource:
    """Constant bit rate: one ``packet_bytes`` packet every interval."""

    def __init__(
        self,
        sim: Simulator,
        sink: TrafficSink,
        rate_bps: float,
        packet_bytes: int = 1000,
    ) -> None:
        if rate_bps <= 0 or packet_bytes <= 0:
            raise WorkloadError("rate and packet size must be positive")
        self.sim = sim
        self.sink = sink
        self.packet_bytes = packet_bytes
        self.interval = packet_bytes * 8 / rate_bps
        self.sent = 0
        self._running = False

    def start(self, duration: Optional[float] = None) -> None:
        self._running = True
        self._stop_at = None if duration is None else self.sim.now + duration
        self.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        if self._stop_at is not None and self.sim.now > self._stop_at:
            self._running = False
            return
        self.sink(self.sent, self.packet_bytes)
        self.sent += 1
        self.sim.schedule(self.interval, self._tick)


class PoissonSource:
    """Poisson arrivals at ``rate_pps`` with fixed packet size."""

    def __init__(
        self,
        sim: Simulator,
        sink: TrafficSink,
        rate_pps: float,
        packet_bytes: int = 1000,
        seed: int = 0,
    ) -> None:
        if rate_pps <= 0:
            raise WorkloadError("rate must be positive")
        self.sim = sim
        self.sink = sink
        self.rate_pps = rate_pps
        self.packet_bytes = packet_bytes
        self._rng = random.Random(seed)
        self.sent = 0
        self._running = False
        self._stop_at: Optional[float] = None

    def start(self, duration: Optional[float] = None) -> None:
        self._running = True
        self._stop_at = None if duration is None else self.sim.now + duration
        self.sim.schedule(self._next_gap(), self._tick)

    def stop(self) -> None:
        self._running = False

    def _next_gap(self) -> float:
        return self._rng.expovariate(self.rate_pps)

    def _tick(self) -> None:
        if not self._running:
            return
        if self._stop_at is not None and self.sim.now > self._stop_at:
            self._running = False
            return
        self.sink(self.sent, self.packet_bytes)
        self.sent += 1
        self.sim.schedule(self._next_gap(), self._tick)


class OnOffSource:
    """Bursty on-off source: exponential on/off periods, CBR while on."""

    def __init__(
        self,
        sim: Simulator,
        sink: TrafficSink,
        rate_bps: float,
        mean_on: float = 0.5,
        mean_off: float = 0.5,
        packet_bytes: int = 1000,
        seed: int = 0,
    ) -> None:
        if min(rate_bps, mean_on, mean_off) <= 0:
            raise WorkloadError("all parameters must be positive")
        self.sim = sim
        self.sink = sink
        self.packet_bytes = packet_bytes
        self.interval = packet_bytes * 8 / rate_bps
        self.mean_on = mean_on
        self.mean_off = mean_off
        self._rng = random.Random(seed)
        self.sent = 0
        self.bursts = 0
        self._running = False
        self._on_until = 0.0
        self._stop_at: Optional[float] = None

    def start(self, duration: Optional[float] = None) -> None:
        self._running = True
        self._stop_at = None if duration is None else self.sim.now + duration
        self._begin_burst()

    def stop(self) -> None:
        self._running = False

    def _expired(self) -> bool:
        return self._stop_at is not None and self.sim.now > self._stop_at

    def _begin_burst(self) -> None:
        if not self._running or self._expired():
            return
        self.bursts += 1
        self._on_until = self.sim.now + self._rng.expovariate(1 / self.mean_on)
        self._tick()

    def _tick(self) -> None:
        if not self._running or self._expired():
            return
        if self.sim.now >= self._on_until:
            off = self._rng.expovariate(1 / self.mean_off)
            self.sim.schedule(off, self._begin_burst)
            return
        self.sink(self.sent, self.packet_bytes)
        self.sent += 1
        self.sim.schedule(self.interval, self._tick)


@dataclass
class ZipfRequestStream:
    """Zipf-skewed content requests over a catalog (the CDN workload).

    ``alpha`` near 0.8-1.2 matches measured CDN popularity curves; the
    stream yields object indices, hot objects first by construction.
    """

    catalog_size: int
    alpha: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.catalog_size < 1:
            raise WorkloadError("catalog must be non-empty")
        if self.alpha <= 0:
            raise WorkloadError("alpha must be positive")
        ranks = np.arange(1, self.catalog_size + 1, dtype=float)
        weights = ranks ** (-self.alpha)
        self._probs = weights / weights.sum()
        self._rng = np.random.default_rng(self.seed)

    def take(self, n: int) -> list[int]:
        """Draw ``n`` object indices (0-based, 0 = most popular)."""
        return list(
            self._rng.choice(self.catalog_size, size=n, p=self._probs)
        )

    def __iter__(self) -> Iterator[int]:
        while True:
            yield int(self._rng.choice(self.catalog_size, p=self._probs))

    def expected_hit_rate(self, cache_slots: int) -> float:
        """Idealized LFU hit rate: mass of the ``cache_slots`` hottest."""
        slots = min(cache_slots, self.catalog_size)
        return float(self._probs[:slots].sum())

"""Discrete-event network simulation substrate for the InterEdge.

Public surface:

* :class:`Simulator`, :class:`Timer`, :class:`PeriodicTask` — the event loop.
* :class:`Link`, :class:`NetNode` — wires and devices.
* :class:`Topology` and the ``build_*`` helpers — graph construction.
* :class:`ASGraph` — the IP underlay used by the hijack experiment.
* :class:`PacketTrace`, :class:`FlowStats` — measurement.
"""

from .engine import EventHandle, PeriodicTask, SimulationError, Simulator, Timer
from .faults import FaultError, FaultEvent, FaultInjector, FaultPlan, link_name
from .ipnet import ASGraph, AutonomousSystem, IPNetError, Route, build_random_as_graph
from .link import DEFAULT_MTU, Link, LinkError, LinkStats, frame_size
from .node import EchoNode, NetNode, NodeError, SinkNode
from .topology import Topology, build_full_mesh, build_line, build_star
from .trace import FlowStats, LatencySample, PacketTrace, TraceRecord, percentile, summarize
from .workloads import (
    CBRSource,
    OnOffSource,
    PoissonSource,
    TrafficSink,
    WorkloadError,
    ZipfRequestStream,
)

__all__ = [
    "ASGraph",
    "CBRSource",
    "OnOffSource",
    "PoissonSource",
    "TrafficSink",
    "WorkloadError",
    "ZipfRequestStream",
    "AutonomousSystem",
    "DEFAULT_MTU",
    "EchoNode",
    "EventHandle",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FlowStats",
    "IPNetError",
    "LatencySample",
    "Link",
    "LinkError",
    "LinkStats",
    "NetNode",
    "NodeError",
    "PacketTrace",
    "PeriodicTask",
    "Route",
    "SimulationError",
    "Simulator",
    "SinkNode",
    "Timer",
    "Topology",
    "TraceRecord",
    "build_full_mesh",
    "build_line",
    "build_random_as_graph",
    "build_star",
    "frame_size",
    "link_name",
    "percentile",
    "summarize",
]

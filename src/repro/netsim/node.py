"""Network node base class.

A :class:`NetNode` is anything attached to links: hosts, service nodes,
underlay routers. Subclasses override :meth:`handle_frame`. Nodes keep a
neighbor table (node → link) so higher layers can send by next-hop node
rather than by interface index.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import Simulator
from .link import Link


class NodeError(Exception):
    """Raised for invalid node operations (e.g. no link to neighbor)."""


class NetNode:
    """Base class for all simulated devices."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.links: list[Link] = []
        self._neighbor_links: dict["NetNode", Link] = {}
        self.frames_received = 0
        self.frames_sent = 0
        #: True while the node is crashed: links are down and any frame
        #: already on the wire toward it is dropped on arrival.
        self.failed = False
        self.frames_dropped_failed = 0
        # Optional tap invoked for every received frame (tracing/tests).
        self.rx_tap: Optional[Callable[[Any, Link], None]] = None

    def attach_link(self, link: Link) -> None:
        self.links.append(link)
        self._neighbor_links[link.other(self)] = link

    def neighbors(self) -> list["NetNode"]:
        return list(self._neighbor_links)

    def link_to(self, neighbor: "NetNode") -> Link:
        try:
            return self._neighbor_links[neighbor]
        except KeyError:
            raise NodeError(f"{self.name} has no link to {neighbor.name}") from None

    def has_link_to(self, neighbor: "NetNode") -> bool:
        return neighbor in self._neighbor_links

    def fail(self) -> None:
        """Crash the node: mark it failed and take every attached link down.

        In-flight frames (already on the wire) are dropped on arrival
        while failed. Subclasses layer volatile-state loss on top (see
        ``ServiceNode.crash``).
        """
        self.failed = True
        for link in self.links:
            link.set_down()

    def recover(self) -> None:
        """Undo :meth:`fail`: bring the node and its links back up.

        Links downed independently of the crash come back up too — the
        fault harness models node restart as "power back on"; compose a
        separate link fault if a link must stay dark across a restart.
        """
        self.failed = False
        for link in self.links:
            link.set_up()

    def send_frame(self, frame: Any, neighbor: "NetNode") -> bool:
        """Transmit a frame to a directly connected neighbor."""
        link = self.link_to(neighbor)
        sent = link.transmit(frame, self)
        if sent:
            self.frames_sent += 1
        return sent

    def receive_frame(self, frame: Any, link: Link) -> None:
        """Entry point called by links; dispatches to :meth:`handle_frame`."""
        if self.failed:
            self.frames_dropped_failed += 1
            return
        self.frames_received += 1
        if self.rx_tap is not None:
            self.rx_tap(frame, link)
        self.handle_frame(frame, link)

    def receive_burst(self, frames: list, link: Link) -> None:
        """Entry point for a coalesced back-to-back burst from a link.

        The default keeps per-frame semantics (taps, counters, dispatch in
        arrival order). Subclasses with a batch-capable datapath — e.g.
        :class:`~repro.core.service_node.ServiceNode` feeding its
        pipe-terminus — override this to process the burst as one unit.
        """
        if self.failed:
            self.frames_dropped_failed += len(frames)
            return
        for frame in frames:
            self.receive_frame(frame, link)

    def handle_frame(self, frame: Any, link: Link) -> None:
        """Process a received frame. Subclasses override."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class SinkNode(NetNode):
    """A node that records everything it receives (test/benchmark helper)."""

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self.received: list[Any] = []

    def handle_frame(self, frame: Any, link: Link) -> None:
        self.received.append(frame)


class EchoNode(NetNode):
    """A node that bounces every frame back to its sender."""

    def handle_frame(self, frame: Any, link: Link) -> None:
        link.transmit(frame, self)

"""Group membership for multipoint services (§6.2 "Multipoint delivery").

The paper's protocol, implemented faithfully:

* **Receivers join** a group by sending a join message to their first-hop
  SN, carrying an owner-authorizing signature (or relying on a signed
  open-group statement in the lookup service).
* **Senders must register** with their first-hop SN before sending
  (the changed anycast/multicast semantics that buy scalability).
* When an SN gains its **first local member** of a group it notifies the
  edomain core; when the edomain gains its first member the core notifies
  the global lookup service. Symmetric teardown on last-leave.
* When a **sender registers**, the SN reads from the core the set of other
  local SNs with members and installs a watch; the core reads from the
  lookup service the set of member edomains and installs a watch.

Resulting knowledge (asserted by tests, measured by A-MCAST):

* every SN knows the group memberships of its own hosts;
* every SN with a local sender knows all member SNs in its edomain;
* every core knows the memberships of its SNs, and for groups with a local
  sender, which other edomains have members;
* the lookup service knows which edomains have members of each group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .core_store import CoreStore
from .lookup import GlobalLookupService


class MembershipError(Exception):
    """Raised on protocol violations (unauthorized join, unregistered send)."""


def _members_key(group: str) -> str:
    return f"groups/{group}/member-sns"


def _senders_key(group: str) -> str:
    return f"groups/{group}/sender-sns"


@dataclass
class GroupView:
    """What one SN knows about a group it has a sender for."""

    local_member_sns: set[str] = field(default_factory=set)
    watching: bool = False
    #: core-store watch token, held so the watch can be torn down when the
    #: last local sender unregisters (RES001: watches must not leak)
    watch_token: Optional[int] = None


class EdomainMembershipCore:
    """The membership half of an edomain core."""

    def __init__(
        self, edomain_name: str, store: CoreStore, lookup: GlobalLookupService
    ) -> None:
        self.edomain_name = edomain_name
        self.store = store
        self.lookup = lookup
        #: groups for which this edomain watches the lookup service
        self._lookup_watched: set[str] = set()
        #: group -> remote member edomains (kept fresh by lookup watches)
        self.remote_member_edomains: dict[str, set[str]] = {}

    # -- member-side (driven by SN join/leave notices) -----------------------
    def sn_gained_member(self, group: str, sn_address: str) -> None:
        first_in_edomain = self.store.set_size(_members_key(group)) == 0
        self.store.add(_members_key(group), sn_address)
        if first_in_edomain:
            self.lookup.add_group_edomain(group, self.edomain_name)

    def sn_lost_member(self, group: str, sn_address: str) -> None:
        self.store.remove(_members_key(group), sn_address)
        if self.store.set_size(_members_key(group)) == 0:
            self.lookup.remove_group_edomain(group, self.edomain_name)

    # -- sender-side ----------------------------------------------------------
    def sn_registered_sender(self, group: str, sn_address: str) -> set[str]:
        """Record a sender; begin watching the lookup service for the group.

        Returns the current set of *other* edomains with members.
        """
        self.store.add(_senders_key(group), sn_address)
        if group not in self._lookup_watched:
            self._lookup_watched.add(group)
            self.lookup.watch_group(group, self._on_lookup_update)
            edomains = self.lookup.group_edomains(group)
            edomains.discard(self.edomain_name)
            self.remote_member_edomains[group] = edomains
        return set(self.remote_member_edomains.get(group, set()))

    def sn_unregistered_sender(self, group: str, sn_address: str) -> None:
        self.store.remove(_senders_key(group), sn_address)
        if (
            self.store.set_size(_senders_key(group)) == 0
            and group in self._lookup_watched
        ):
            # Last sender in the edomain gone: stop watching the lookup
            # service and drop the remote-edomain view it was maintaining.
            self._lookup_watched.discard(group)
            self.lookup.unwatch_group(group, self._on_lookup_update)
            self.remote_member_edomains.pop(group, None)

    def purge_sn(self, sn_address: str) -> int:
        """Remove a dead SN from every group it appears in (§3.3 repair).

        Called by the failover coordinator when an SN is declared dead:
        senders must stop fanning out to it, and the lookup service must
        forget this edomain for groups whose only member SN it was. Goes
        through :meth:`sn_lost_member` / :meth:`sn_unregistered_sender`
        so watches and lookup bookkeeping fire exactly as on a voluntary
        leave. Returns the number of entries removed.
        """
        removed = 0
        for key in self.store.keys("groups/"):
            group = key.split("/")[1]
            if key.endswith("/member-sns") and sn_address in self.store.members(key):
                self.sn_lost_member(group, sn_address)
                removed += 1
            elif key.endswith("/sender-sns") and sn_address in self.store.members(
                key
            ):
                self.sn_unregistered_sender(group, sn_address)
                removed += 1
        return removed

    def _on_lookup_update(self, group: str, op: str, edomain: str) -> None:
        if edomain == self.edomain_name:
            return
        current = self.remote_member_edomains.setdefault(group, set())
        if op == "add":
            current.add(edomain)
        elif op == "remove":
            current.discard(edomain)

    # -- queries ----------------------------------------------------------
    def member_sns(self, group: str) -> set[str]:
        return self.store.members(_members_key(group))

    def sender_sns(self, group: str) -> set[str]:
        return self.store.members(_senders_key(group))

    def member_edomains(self, group: str) -> set[str]:
        """Other edomains with members (valid for sender-registered groups)."""
        return set(self.remote_member_edomains.get(group, set()))

    def state_size(self) -> dict[str, int]:
        member_keys = [k for k in self.store.keys("groups/") if k.endswith("member-sns")]
        sender_keys = [k for k in self.store.keys("groups/") if k.endswith("sender-sns")]
        return {
            "groups_with_members": len(member_keys),
            "member_entries": sum(self.store.set_size(k) for k in member_keys),
            "sender_entries": sum(self.store.set_size(k) for k in sender_keys),
            "lookup_watches": len(self._lookup_watched),
        }


class SNMembershipAgent:
    """The membership bookkeeping inside one SN.

    Multipoint service modules (anycast/multicast/pubsub) delegate joins,
    leaves, and sender registration here; the agent talks to the edomain
    core and maintains the SN's local knowledge.
    """

    def __init__(
        self,
        sn_address: str,
        core: EdomainMembershipCore,
        lookup: GlobalLookupService,
    ) -> None:
        self.sn_address = sn_address
        self.core = core
        self.lookup = lookup
        #: group -> locally joined host addresses
        self.local_members: dict[str, set[str]] = {}
        #: group -> locally registered sender host addresses
        self.local_senders: dict[str, set[str]] = {}
        #: group -> view (only for groups with a local sender)
        self._views: dict[str, GroupView] = {}
        self.joins_rejected = 0

    # -- joins ------------------------------------------------------------
    def join(self, group: str, host: str, signature: bytes = b"") -> bool:
        """Validate and record a host's join (§6.2 authorization rules)."""
        record = self.lookup.address_record(host)
        joiner_public = record.owner_public if record else b""
        if not self.lookup.validate_join(group, joiner_public, signature):
            self.joins_rejected += 1
            return False
        members = self.local_members.setdefault(group, set())
        first = not members
        members.add(host)
        if first:
            self.core.sn_gained_member(group, self.sn_address)
        return True

    def leave(self, group: str, host: str) -> bool:
        members = self.local_members.get(group)
        if not members or host not in members:
            return False
        members.remove(host)
        if not members:
            self.core.sn_lost_member(group, self.sn_address)
            del self.local_members[group]
        return True

    # -- senders -----------------------------------------------------------
    def register_sender(self, group: str, host: str) -> GroupView:
        """Register a sender; build and watch the local-member-SN view."""
        self.local_senders.setdefault(group, set()).add(host)
        view = self._views.get(group)
        if view is None:
            view = GroupView()
            self._views[group] = view
            view.local_member_sns = self.core.member_sns(group)
            view.watch_token = self.core.store.watch(
                _members_key(group), self._on_member_update
            )
            view.watching = True
            self.core.sn_registered_sender(group, self.sn_address)
        return view

    def unregister_sender(self, group: str, host: str) -> None:
        senders = self.local_senders.get(group)
        if senders:
            senders.discard(host)
            if not senders:
                del self.local_senders[group]
                view = self._views.pop(group, None)
                if view is not None and view.watch_token is not None:
                    self.core.store.unwatch(_members_key(group), view.watch_token)
                    view.watch_token = None
                    view.watching = False
                self.core.sn_unregistered_sender(group, self.sn_address)

    def _on_member_update(self, key: str, op: str, sn_address: str) -> None:
        group = key.split("/")[1]
        view = self._views.get(group)
        if view is None:
            return
        if op == "add":
            view.local_member_sns.add(sn_address)
        elif op == "remove":
            view.local_member_sns.discard(sn_address)

    # -- queries ----------------------------------------------------------
    def is_sender(self, group: str, host: str) -> bool:
        return host in self.local_senders.get(group, set())

    def is_member(self, group: str, host: str) -> bool:
        return host in self.local_members.get(group, set())

    def members_of(self, group: str) -> set[str]:
        return set(self.local_members.get(group, set()))

    def member_sns_in_edomain(self, group: str) -> set[str]:
        """All member SNs in this edomain (valid when we have a sender)."""
        view = self._views.get(group)
        if view is not None:
            return set(view.local_member_sns)
        return self.core.member_sns(group)

    def member_edomains(self, group: str) -> set[str]:
        return self.core.member_edomains(group)

    def host_groups(self, host: str) -> set[str]:
        """All group memberships of one associated host (§6.2 knowledge)."""
        return {
            group
            for group, members in self.local_members.items()
            if host in members
        }

    def state_size(self) -> dict[str, int]:
        return {
            "groups_with_local_members": len(self.local_members),
            "member_entries": sum(len(m) for m in self.local_members.values()),
            "sender_groups": len(self.local_senders),
            "views": len(self._views),
        }


def make_join_grant(owner_keypair, group: str, joiner_public: bytes) -> bytes:
    """Owner-side helper producing the signature a join message carries."""
    return owner_keypair.sign(b"join-grant|" + group.encode() + b"|" + joiner_public)

"""InterEdge control plane: edomain cores, global lookup, membership, naming."""

from .core_store import CoreStore, CoreStoreError
from .lookup import (
    AddressRecord,
    GlobalLookupService,
    LookupError_,
    OpenGroupStatement,
)
from .membership import (
    EdomainMembershipCore,
    GroupView,
    MembershipError,
    SNMembershipAgent,
    make_join_grant,
)
from .naming import NameService, NamingError, Resolution

__all__ = [
    "AddressRecord",
    "CoreStore",
    "CoreStoreError",
    "EdomainMembershipCore",
    "GlobalLookupService",
    "GroupView",
    "LookupError_",
    "MembershipError",
    "NameService",
    "NamingError",
    "OpenGroupStatement",
    "Resolution",
    "SNMembershipAgent",
    "make_join_grant",
]

"""Name services (§3.2 "Name services").

Different InterEdge services use different name/address spaces (pub/sub has
topics, multicast has groups); for point-to-point services, resolution must
return not just the destination address but also one or more SNs associated
with the destination host — the sender's SN needs a next hop.

The resolver layers on the global lookup service's address records and adds
a human-name → address directory (a DNS stand-in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .lookup import GlobalLookupService


class NamingError(Exception):
    """Raised when resolution fails."""


@dataclass(frozen=True)
class Resolution:
    """The result of resolving a point-to-point name."""

    name: str
    address: str
    associated_sns: tuple[str, ...]

    @property
    def primary_sn(self) -> str:
        if not self.associated_sns:
            raise NamingError(f"{self.name} has no associated SN")
        return self.associated_sns[0]


class NameService:
    """Point-to-point name resolution for the InterEdge."""

    def __init__(self, lookup: GlobalLookupService) -> None:
        self._lookup = lookup
        self._names: dict[str, str] = {}  # name -> address
        self.resolutions = 0

    def register_name(self, name: str, address: str) -> None:
        self._names[name] = address

    def deregister_name(self, name: str) -> bool:
        return self._names.pop(name, None) is not None

    def resolve(self, name: str) -> Resolution:
        """Resolve a name to (address, associated SNs).

        Raises:
            NamingError: unknown name or address without a lookup record.
        """
        self.resolutions += 1
        address = self._names.get(name, name if "." in name else None)
        if address is None:
            raise NamingError(f"unknown name {name!r}")
        record = self._lookup.address_record(address)
        if record is None:
            raise NamingError(f"no lookup record for {address}")
        return Resolution(
            name=name,
            address=address,
            associated_sns=tuple(record.associated_sns),
        )

    def resolve_address(self, address: str) -> Resolution:
        """Resolve a raw address (no directory hop)."""
        record = self._lookup.address_record(address)
        if record is None:
            raise NamingError(f"no lookup record for {address}")
        self.resolutions += 1
        return Resolution(
            name=address,
            address=address,
            associated_sns=tuple(record.associated_sns),
        )

"""The edomain *core*: an SDN-style persistent, watchable store (§6.2).

Each edomain runs network-management tooling with a persistent and scalable
store the paper calls the core. SNs write membership facts into it and put
watches on the lists they need; the core pushes updates to watchers.

The store is a hierarchical key space (``"groups/<g>/members"``-style keys)
holding sets, with per-key watch callbacks. A tiny write-ahead log supports
the durability story (state survives an SN restart) and lets tests verify
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Watch callback: (key, op, value) where op is "add" | "remove" | "set"
WatchCallback = Callable[[str, str, Any], None]


class CoreStoreError(Exception):
    """Raised on invalid store operations."""


@dataclass
class _WatchEntry:
    callback: WatchCallback
    token: int


class CoreStore:
    """Persistent watchable store for one edomain."""

    def __init__(self, edomain_name: str = "default") -> None:
        self.edomain_name = edomain_name
        self._sets: dict[str, set[Any]] = {}
        self._values: dict[str, Any] = {}
        self._watches: dict[str, list[_WatchEntry]] = {}
        self._prefix_watches: list[tuple[str, _WatchEntry]] = []
        self._next_token = 1
        self.wal: list[tuple[str, str, Any]] = []  # (key, op, value)

    # -- set-valued keys -----------------------------------------------------
    def add(self, key: str, member: Any) -> bool:
        """Add to a set key; returns True if it was newly added."""
        members = self._sets.setdefault(key, set())
        if member in members:
            return False
        members.add(member)
        self.wal.append((key, "add", member))
        self._notify(key, "add", member)
        return True

    def remove(self, key: str, member: Any) -> bool:
        members = self._sets.get(key)
        if members is None or member not in members:
            return False
        members.remove(member)
        self.wal.append((key, "remove", member))
        self._notify(key, "remove", member)
        return True

    def members(self, key: str) -> set[Any]:
        return set(self._sets.get(key, set()))

    def set_size(self, key: str) -> int:
        return len(self._sets.get(key, ()))

    # -- scalar keys ----------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self._values[key] = value
        self.wal.append((key, "set", value))
        self._notify(key, "set", value)

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def keys(self, prefix: str = "") -> list[str]:
        all_keys = set(self._sets) | set(self._values)
        return sorted(k for k in all_keys if k.startswith(prefix))

    # -- watches --------------------------------------------------------------
    def watch(self, key: str, callback: WatchCallback) -> int:
        """Watch a key; returns a token for :meth:`unwatch`."""
        token = self._next_token
        self._next_token += 1
        self._watches.setdefault(key, []).append(_WatchEntry(callback, token))
        return token

    def unwatch(self, key: str, token: int) -> bool:
        entries = self._watches.get(key, [])
        for i, entry in enumerate(entries):
            if entry.token == token:
                del entries[i]
                return True
        return False

    def watch_prefix(self, prefix: str, callback: WatchCallback) -> int:
        """Watch every key under a hierarchical prefix (e.g. ``"resilience/"``).

        One subscription covers a whole subtree — the shape SN agents
        need for control-plane push (border mappings, future config keys)
        without a watch per key. Returns a token for
        :meth:`unwatch_prefix`.
        """
        token = self._next_token
        self._next_token += 1
        self._prefix_watches.append((prefix, _WatchEntry(callback, token)))
        return token

    def unwatch_prefix(self, token: int) -> bool:
        for i, (_, entry) in enumerate(self._prefix_watches):
            if entry.token == token:
                del self._prefix_watches[i]
                return True
        return False

    def watcher_count(self, key: str) -> int:
        exact = len(self._watches.get(key, ()))
        by_prefix = sum(
            1 for prefix, _ in self._prefix_watches if key.startswith(prefix)
        )
        return exact + by_prefix

    def _notify(self, key: str, op: str, value: Any) -> None:
        for entry in list(self._watches.get(key, ())):
            entry.callback(key, op, value)
        for prefix, entry in list(self._prefix_watches):
            if key.startswith(prefix):
                entry.callback(key, op, value)

    # -- recovery ---------------------------------------------------------
    def rebuild_from_wal(self) -> "CoreStore":
        """Replay the WAL into a fresh store (crash-recovery model)."""
        fresh = CoreStore(self.edomain_name)
        for key, op, value in self.wal:
            if op == "add":
                fresh._sets.setdefault(key, set()).add(value)
            elif op == "remove":
                fresh._sets.get(key, set()).discard(value)
            elif op == "set":
                fresh._values[key] = value
        fresh.wal = list(self.wal)
        return fresh

"""The global lookup service (§6.2).

The paper assumes IANA (or similar) operates a durable, scalable lookup
service that:

* binds each address to the **public key of its owner** — join messages to
  owned groups must carry a signature this key validates;
* stores **signed open-group statements** so anyone may join open groups;
* tracks, per group, **which edomains have members** (written by edomain
  cores when their first member joins) and supports watches so cores with
  senders learn about new member edomains;
* resolves point-to-point names to (address, associated SNs) — see
  :mod:`repro.control.naming` which layers on this.

One instance is shared by every edomain core in a federation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.crypto import KeyPair, SignatureRegistry

WatchCallback = Callable[[str, str, Any], None]


class LookupError_(Exception):
    """Raised on invalid lookup operations (trailing _ avoids the builtin)."""


@dataclass
class AddressRecord:
    owner_public: bytes
    associated_sns: list[str] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass
class OpenGroupStatement:
    """A signed statement that a group accepts all joiners."""

    group: str
    owner_public: bytes
    signature: bytes

    @staticmethod
    def message_for(group: str) -> bytes:
        return b"open-group|" + group.encode()


class GlobalLookupService:
    """The IANA-like registry shared across the whole InterEdge."""

    def __init__(self, registry: Optional[SignatureRegistry] = None) -> None:
        self.registry = registry or SignatureRegistry()
        self._addresses: dict[str, AddressRecord] = {}
        self._group_owners: dict[str, bytes] = {}
        self._open_groups: dict[str, OpenGroupStatement] = {}
        self._group_edomains: dict[str, set[str]] = {}
        self._service_nodes: dict[str, set[str]] = {}
        self._watches: dict[str, list[WatchCallback]] = {}
        self.queries = 0
        self.updates = 0

    # -- identity -----------------------------------------------------------
    def register_identity(self, keypair: KeyPair) -> None:
        self.registry.register(keypair)

    def register_address(
        self,
        address: str,
        owner: KeyPair,
        associated_sns: Optional[list[str]] = None,
        **metadata: Any,
    ) -> None:
        self.registry.register(owner)
        self._addresses[address] = AddressRecord(
            owner_public=owner.public,
            associated_sns=list(associated_sns or []),
            metadata=dict(metadata),
        )
        self.updates += 1

    def upsert_alias(
        self,
        alias: str,
        owner_public: bytes,
        associated_sns: list[str],
        **metadata: Any,
    ) -> None:
        """Create/replace a derived record (e.g. a mobility binding) whose
        owner key is inherited from an existing registration."""
        self._addresses[alias] = AddressRecord(
            owner_public=owner_public,
            associated_sns=list(associated_sns),
            metadata=dict(metadata),
        )
        self.updates += 1

    def address_record(self, address: str) -> Optional[AddressRecord]:
        self.queries += 1
        return self._addresses.get(address)

    def owner_public(self, address: str) -> Optional[bytes]:
        record = self.address_record(address)
        return record.owner_public if record else None

    # -- groups -----------------------------------------------------------
    def register_group(self, group: str, owner: KeyPair) -> None:
        """Claim a group name; joins must be authorized by this owner."""
        self.registry.register(owner)
        self._group_owners[group] = owner.public
        self.updates += 1

    def group_owner(self, group: str) -> Optional[bytes]:
        self.queries += 1
        return self._group_owners.get(group)

    def post_open_group(self, group: str, owner: KeyPair) -> OpenGroupStatement:
        """Owner posts a signed everyone-may-join statement (§6.2)."""
        if self._group_owners.get(group) != owner.public:
            raise LookupError_(f"{group!r} not owned by this key")
        stmt = OpenGroupStatement(
            group=group,
            owner_public=owner.public,
            signature=owner.sign(OpenGroupStatement.message_for(group)),
        )
        self._open_groups[group] = stmt
        self.updates += 1
        return stmt

    def open_group_statement(self, group: str) -> Optional[OpenGroupStatement]:
        self.queries += 1
        stmt = self._open_groups.get(group)
        if stmt is None:
            return None
        if not self.registry.verify(
            stmt.owner_public, OpenGroupStatement.message_for(group), stmt.signature
        ):
            return None
        return stmt

    def validate_join(self, group: str, joiner: bytes, signature: bytes) -> bool:
        """Is this join authorized? Open group, or owner-signed grant."""
        if self.open_group_statement(group) is not None:
            return True
        owner = self._group_owners.get(group)
        if owner is None:
            return False
        grant = b"join-grant|" + group.encode() + b"|" + joiner
        return self.registry.verify(owner, grant, signature)

    # -- group → edomains (written by cores) --------------------------------
    def add_group_edomain(self, group: str, edomain: str) -> bool:
        added = edomain not in self._group_edomains.setdefault(group, set())
        if added:
            self._group_edomains[group].add(edomain)
            self.updates += 1
            self._notify(group, "add", edomain)
        return added

    def remove_group_edomain(self, group: str, edomain: str) -> bool:
        edomains = self._group_edomains.get(group, set())
        if edomain in edomains:
            edomains.remove(edomain)
            self.updates += 1
            self._notify(group, "remove", edomain)
            return True
        return False

    def group_edomains(self, group: str) -> set[str]:
        self.queries += 1
        return set(self._group_edomains.get(group, set()))

    def watch_group(self, group: str, callback: WatchCallback) -> None:
        self._watches.setdefault(group, []).append(callback)

    def unwatch_group(self, group: str, callback: WatchCallback) -> bool:
        """Remove one registration of ``callback`` on ``group``.

        Returns True if a registration was removed. Watchers must call this
        on teardown — a leaked watch keeps delivering updates to (and
        keeps alive) a subscriber that no longer wants them.
        """
        callbacks = self._watches.get(group)
        if not callbacks:
            return False
        try:
            callbacks.remove(callback)
        except ValueError:
            return False
        if not callbacks:
            del self._watches[group]
        return True

    def _notify(self, group: str, op: str, edomain: str) -> None:
        for callback in list(self._watches.get(group, ())):
            callback(group, op, edomain)

    # -- service directory ---------------------------------------------------
    # A durable registry of which SNs participate in a named service role
    # (e.g. message-queue homes). Used for rendezvous hashing across
    # edomains, the same way the group→edomain table serves multipoint.
    def register_service_node(self, service_name: str, sn_address: str) -> None:
        self._service_nodes.setdefault(service_name, set()).add(sn_address)
        self.updates += 1

    def deregister_service_node(self, service_name: str, sn_address: str) -> None:
        self._service_nodes.get(service_name, set()).discard(sn_address)

    def service_nodes(self, service_name: str) -> set[str]:
        self.queries += 1
        return set(self._service_nodes.get(service_name, set()))

    def service_keys(self, prefix: str = "") -> list[str]:
        """All registered service-directory keys starting with ``prefix``."""
        return sorted(k for k in self._service_nodes if k.startswith(prefix))

    # -- stats ----------------------------------------------------------
    def state_size(self) -> dict[str, int]:
        """State-footprint accounting for the A-MCAST benchmark."""
        return {
            "addresses": len(self._addresses),
            "groups": len(self._group_owners),
            "group_edomain_entries": sum(
                len(v) for v in self._group_edomains.values()
            ),
            "watches": sum(len(v) for v in self._watches.values()),
        }

"""A-IPC — ablation: IPC vs shared-memory service invocation (§6.3).

The prototype "used IPC to send and receive data from services which
obviously adds overhead ... there are well-known solutions" — i.e. shared
memory rings. This ablation measures both invocation channels on identical
work, isolating the marshalling cost that creates Table 1's no-service /
null-service gap.
"""

from __future__ import annotations

import pytest

from repro.core.ilp import ILPHeader, TLV
from repro.core.ipc import InvocationChannel, InvocationMode
from repro.core.packet import ILPPacket, L3Header, make_payload
from repro.core.service_module import Verdict

from .conftest import report

_results: list[dict] = []


def _mk_packet(payload_size: int) -> tuple[ILPHeader, ILPPacket]:
    header = ILPHeader(service_id=1, connection_id=42)
    header.set_str(TLV.DEST_ADDR, "192.168.0.9")
    packet = ILPPacket(
        l3=L3Header(src="10.0.0.2", dst="10.0.0.1"),
        ilp_wire=b"\x00" * 48,
        payload=make_payload(b"z" * payload_size),
    )
    return header, packet


def _handler(header, packet):
    return Verdict.forward("10.0.0.3", header, packet.payload)


@pytest.mark.parametrize("mode", [InvocationMode.IPC, InvocationMode.SHARED_MEMORY])
@pytest.mark.parametrize("payload_size", [64, 1024])
def test_invocation_cost(benchmark, mode, payload_size):
    channel = InvocationChannel(mode)
    header, packet = _mk_packet(payload_size)
    verdict = benchmark(channel.invoke, _handler, header, packet)
    assert verdict.emits[0].peer == "10.0.0.3"
    ops = benchmark.stats.stats.mean
    _results.append(
        {
            "mode": mode.value,
            "payload": payload_size,
            "mean_us": f"{ops * 1e6:.2f}",
        }
    )


def test_shm_is_faster(benchmark):
    """The headline: shared memory beats IPC by a wide margin."""
    import time

    header, packet = _mk_packet(256)

    def compare():
        timings = {}
        for mode in (InvocationMode.IPC, InvocationMode.SHARED_MEMORY):
            channel = InvocationChannel(mode)
            for _ in range(200):  # warmup
                channel.invoke(_handler, header, packet)
            start = time.perf_counter()
            for _ in range(3000):
                channel.invoke(_handler, header, packet)
            timings[mode] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(compare, rounds=1, iterations=1)
    ratio = timings[InvocationMode.IPC] / timings[InvocationMode.SHARED_MEMORY]
    _results.append(
        {"mode": "ipc/shm ratio", "payload": 256, "mean_us": f"{ratio:.1f}x"}
    )
    assert ratio > 2.0


def teardown_module(module):
    if _results:
        report(
            "A-IPC: invocation channel ablation",
            _results,
            ["mode", "payload", "mean_us"],
        )

"""T1 — Table 1: no-service / null-service × enclave on/off.

Paper (Appendix C, AMD EPYC 7B12 + SEV):

    Microbenchmark  Enclave?  Throughput (PPS)  Latency (us)
    No-service      No        377420.1          12.4
    No-service      Yes       372882.9          13.1
    Null-service    No        120018.5          33.0
    Null-service    Yes       110627.1          35.5

Our substrate is the Python pipe-terminus, not a tuned C datapath, so
absolute PPS is far lower; the *shape* must hold:

* null-service ≈ 3× slower than no-service (the IPC hop dominates);
* enclaves cost single-digit percent on either path.

Setup mirrors the paper's: the no-service case is the pipe-terminus alone
(decision-cache hit, "as if service communication used shared memory
rings"); the null-service case punts every packet over the marshalled IPC
channel to a module that immediately returns it. The enclave variant
applies a SEV-style I/O tax to every packet's buffer crossings (bounce
buffer copy + page re-encryption), implemented as real work.
"""

from __future__ import annotations

import hashlib
import time

import pytest

from repro.core.decision_cache import CacheKey, Decision
from repro.core.ilp import ILPHeader, TLV
from repro.core.packet import ILPPacket, L3Header, make_payload
from repro.core.psp import PSPContext, pairwise_secret
from repro.core.service_node import ServiceNode
from repro.core.service_module import ServiceModule, Verdict
from repro.netsim import Simulator

from .conftest import report

SN_ADDR = "10.0.0.1"
INGRESS = "10.0.0.2"
EGRESS = "10.0.0.3"

PAPER_ROWS = {
    ("no-service", False): (377420.1, 12.4),
    ("no-service", True): (372882.9, 13.1),
    ("null-service", False): (120018.5, 33.0),
    ("null-service", True): (110627.1, 35.5),
}

_table1_results: list[dict] = []


class _EchoService(ServiceModule):
    """The paper's null-service: return the packet to the terminus."""

    SERVICE_ID = 0x0001
    NAME = "bench-null"

    def handle_packet(self, header: ILPHeader, packet) -> Verdict:
        return Verdict.forward(EGRESS, header, packet.payload)


class _SEVIOModel:
    """SEV's datapath tax: every packet buffer crossing the guest boundary
    is copied through a bounce buffer and re-encrypted at page granularity
    (4 KiB minimum per crossing). We charge one page-sized copy + one
    page-sized hash per direction — real CPU work, so the measured enclave
    overhead emerges rather than being asserted."""

    PAGE = 4096

    def __init__(self) -> None:
        self.bytes_taxed = 0

    _PAGE_BUF = bytes(PAGE)

    def tax(self, packet: ILPPacket) -> None:
        wire = packet.ilp_wire + packet.payload.data
        # One page re-encryption per crossing (copy + hash).
        hashlib.sha256(self._PAGE_BUF[len(wire):] + wire).digest()
        self.bytes_taxed += self.PAGE


class _Table1Rig:
    def __init__(self, service: bool, enclave: bool) -> None:
        self.sim = Simulator()
        self.node = ServiceNode(self.sim, "sn", SN_ADDR)
        self.delivered = 0
        self.node.terminus._transmit = self._sink
        secret_in = pairwise_secret(SN_ADDR, INGRESS)
        secret_out = pairwise_secret(SN_ADDR, EGRESS)
        self.node.keystore.establish(INGRESS, secret_in)
        self.node.keystore.establish(EGRESS, secret_out)
        self.tx_ctx = PSPContext(secret_in)
        self.enclave = _SEVIOModel() if enclave else None
        header = ILPHeader(service_id=_EchoService.SERVICE_ID, connection_id=7)
        header.set_str(TLV.DEST_ADDR, "192.168.0.9")
        self._header_bytes = header.encode()
        if service:
            self.node.env.load(_EchoService())
        else:
            # No-service: the decision cache short-circuits everything.
            self.node.env.load(_EchoService())
            self.node.cache.install(
                CacheKey(INGRESS, _EchoService.SERVICE_ID, 7),
                Decision.forward(EGRESS),
            )
        self.service = service
        self.payload = make_payload(b"x" * 64)

    def _sink(self, peer: str, packet: ILPPacket) -> bool:
        if self.enclave is not None:
            self.enclave.tax(packet)  # egress crossing
        self.delivered += 1
        return True

    def make_packet(self) -> ILPPacket:
        return ILPPacket(
            l3=L3Header(src=INGRESS, dst=SN_ADDR),
            ilp_wire=self.tx_ctx.seal(self._header_bytes),
            payload=self.payload,
        )

    def process_one(self, packet: ILPPacket) -> None:
        if self.enclave is not None:
            self.enclave.tax(packet)  # ingress crossing
        self.node.terminus.receive(packet)
        if self.service:
            # Null-service path must not populate the cache between runs
            # (every packet is supposed to take the IPC path).
            self.node.cache.stats.installs = 0

    def measure(self, n_packets: int = 2000) -> tuple[float, float]:
        """Returns (throughput PPS, median per-packet latency µs)."""
        packets = [self.make_packet() for _ in range(n_packets)]
        latencies = []
        start = time.perf_counter()
        for packet in packets:
            t0 = time.perf_counter()
            self.process_one(packet)
            latencies.append(time.perf_counter() - t0)
        elapsed = time.perf_counter() - start
        latencies.sort()
        median = latencies[len(latencies) // 2]
        return n_packets / elapsed, median * 1e6


@pytest.mark.parametrize(
    "label,service,enclave",
    [
        ("no-service", False, False),
        ("no-service", True, True),
        ("null-service", True, False),
        ("null-service", True, True),
    ],
    ids=["no-svc", "no-svc-enclave", "null-svc", "null-svc-enclave"],
)
def test_table1_row(benchmark, label, service, enclave):
    # `service` flag abuse above: row 2 is no-service + enclave.
    is_null = label == "null-service"
    rig = _Table1Rig(service=is_null, enclave=enclave)

    def run_batch():
        return rig.measure(n_packets=1500)

    pps, latency_us = benchmark.pedantic(run_batch, rounds=3, iterations=1)
    paper_pps, paper_lat = PAPER_ROWS[(label, enclave)]
    _table1_results.append(
        {
            "Microbenchmark": label,
            "Enclave?": "Yes" if enclave else "No",
            "Throughput (PPS)": f"{pps:.1f}",
            "Latency (us)": f"{latency_us:.1f}",
            "Paper PPS": paper_pps,
            "Paper us": paper_lat,
        }
    )
    assert rig.delivered > 0


def test_table1_shape(benchmark):
    """The cross-row claims of Table 1, asserted on fresh measurements."""

    def measure_all():
        import statistics

        out = {}
        for label, is_null, enclave in [
            ("no-service", False, False),
            ("no-service+enclave", False, True),
            ("null-service", True, False),
            ("null-service+enclave", True, True),
        ]:
            # Median of three fresh rigs: the IPC path's timing is noisy
            # enough that single runs occasionally invert small deltas.
            runs = []
            for _ in range(3):
                rig = _Table1Rig(service=is_null, enclave=enclave)
                rig.measure(n_packets=500)  # warmup
                runs.append(rig.measure(n_packets=4000))
            out[label] = (
                statistics.median(r[0] for r in runs),
                statistics.median(r[1] for r in runs),
            )
        return out

    measurements = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    no_pps, no_lat = measurements["no-service"]
    null_pps, null_lat = measurements["null-service"]
    no_e_pps, _ = measurements["no-service+enclave"]
    null_e_pps, _ = measurements["null-service+enclave"]

    rows = [
        {
            "case": name,
            "pps": f"{pps:.0f}",
            "median_us": f"{lat:.1f}",
        }
        for name, (pps, lat) in measurements.items()
    ]
    report("Table 1 (measured, this substrate)", rows, ["case", "pps", "median_us"])

    # Shape 1: the IPC hop makes null-service markedly slower (paper: 3.1x
    # on throughput, 2.7x on latency; our interpreted fast path is
    # relatively more expensive, compressing the ratio — see
    # EXPERIMENTS.md T1 notes).
    assert no_pps / null_pps > 1.4
    assert null_lat / no_lat > 1.4
    # Shape 2: enclaves cost a bounded fraction of throughput (paper: ≤9%
    # on bare metal; our page-tax against an interpreted fast path costs
    # 15-40% depending on machine load, so the band is wide — the claim
    # enforced is "a tax, not a cliff").
    assert no_e_pps / no_pps > 0.5
    assert null_e_pps / null_pps > 0.5
    # ...and the enclave tax must actually be visible where it is
    # resolvable: on the fast path the tax is a large fraction of the
    # per-packet cost. (On the null path the tax is ~1-2% of an
    # IPC-dominated 130 µs — below this substrate's run-to-run noise, just
    # as the paper's 8% rides on a far quieter testbed.)
    assert no_e_pps < no_pps * 1.02


def teardown_module(module):
    if _table1_results:
        report(
            "Table 1: paper vs measured",
            _table1_results,
            [
                "Microbenchmark",
                "Enclave?",
                "Throughput (PPS)",
                "Latency (us)",
                "Paper PPS",
                "Paper us",
            ],
        )


def test_table1_batch_ingress(benchmark):
    """The no-service row again, driven through the batch ingress: one
    clock read and one delay charge per burst instead of per packet.
    Batch must beat (or match) per-packet ingress on the same rig."""
    rig = _Table1Rig(service=False, enclave=False)

    def run_batched():
        packets = [rig.make_packet() for _ in range(1500)]
        start = time.perf_counter()
        rig.node.terminus.receive_batch(packets)
        elapsed = time.perf_counter() - start
        return 1500 / elapsed

    rig.measure(n_packets=500)  # warm per-packet baseline, same rig
    base_pps, _ = rig.measure(n_packets=1500)
    batch_pps = benchmark.pedantic(run_batched, rounds=3, iterations=1)
    assert rig.delivered > 0
    report(
        "Table 1 addendum: batch vs per-packet ingress (no-service row)",
        [
            {"ingress": "receive()", "pps": f"{base_pps:.1f}"},
            {"ingress": "receive_batch(1500)", "pps": f"{batch_pps:.1f}"},
        ],
        ["ingress", "pps"],
    )
    # Batching amortizes bookkeeping; it must never be slower than ~parity.
    assert batch_pps > base_pps * 0.9

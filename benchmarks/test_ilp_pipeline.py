"""F2 — the Figure 2 pipeline, microbenchmarked stage by stage.

Regenerates the processing structure of Figure 2 as numbers: ILP header
encode/decode, PSP seal/open, decision-cache lookup, and the assembled
fast path. Not a paper table per se (Figure 2 is a diagram), but the
executable form of it — and the baseline the ablations compare against.
"""

from __future__ import annotations

import pytest

from repro.core.decision_cache import CacheKey, Decision, DecisionCache
from repro.core.ilp import ILPHeader, TLV
from repro.core.psp import PSPContext, pairwise_secret


@pytest.fixture
def header() -> ILPHeader:
    h = ILPHeader(service_id=2, connection_id=123456)
    h.set_str(TLV.DEST_ADDR, "192.168.0.77")
    h.set_str(TLV.SRC_HOST, "192.168.0.12")
    return h


def test_ilp_encode(benchmark, header):
    raw = benchmark(header.encode)
    assert len(raw) == header.encoded_size


def test_ilp_decode(benchmark, header):
    raw = header.encode()
    decoded = benchmark(ILPHeader.decode, raw)
    assert decoded.connection_id == header.connection_id


def test_psp_seal(benchmark, header):
    ctx = PSPContext(pairwise_secret("10.0.0.1", "10.0.0.2"))
    raw = header.encode()
    blob = benchmark(ctx.seal, raw)
    assert len(blob) > len(raw)


def test_psp_open(benchmark, header):
    secret = pairwise_secret("10.0.0.1", "10.0.0.2")
    tx, rx = PSPContext(secret), PSPContext(secret)
    blob = tx.seal(header.encode())
    plaintext = benchmark(rx.open, blob)
    assert plaintext == header.encode()


def test_cache_lookup_hit(benchmark):
    cache = DecisionCache(capacity=65536)
    key = CacheKey("10.0.0.2", 2, 123456)
    cache.install(key, Decision.forward("10.0.0.3"))
    decision = benchmark(cache.lookup, key)
    assert decision is not None


def test_cache_lookup_miss(benchmark):
    cache = DecisionCache(capacity=65536)
    key = CacheKey("10.0.0.2", 2, 99)
    decision = benchmark(cache.lookup, key)
    assert decision is None


def test_full_fast_path(benchmark, header):
    """decrypt -> decode -> cache hit -> encode -> re-encrypt (Figure 2)."""
    in_secret = pairwise_secret("10.0.0.1", "10.0.0.2")
    out_secret = pairwise_secret("10.0.0.1", "10.0.0.3")
    rx = PSPContext(in_secret)
    sender = PSPContext(in_secret)
    tx = PSPContext(out_secret)
    cache = DecisionCache()
    key = CacheKey("10.0.0.2", 2, 123456)
    cache.install(key, Decision.forward("10.0.0.3"))
    wire = sender.seal(header.encode())

    def fast_path():
        decoded = ILPHeader.decode(rx.open(wire))
        decision = cache.lookup(
            CacheKey("10.0.0.2", decoded.service_id, decoded.connection_id)
        )
        assert decision is not None
        return tx.seal(decoded.encode())

    out = benchmark(fast_path)
    assert len(out) > 0


def test_ilp_encode_memoized(benchmark, header):
    """The fast path's encode: memo hit after the first serialization."""
    header.encode()  # populate the memo
    raw = benchmark(header.encode)
    assert raw == header.copy().encode()


def test_psp_seal_preencoded(benchmark, header):
    """Seal with the header's wire form reused across packets (the
    _apply_decision fan-out pattern: encode once, seal N times)."""
    ctx = PSPContext(pairwise_secret("10.0.0.1", "10.0.0.2"))
    raw = header.encode()
    blob = benchmark(ctx.seal, raw)
    assert len(blob) == len(raw) + PSPContext.overhead()


def test_full_fast_path_memoized(benchmark, header):
    """Figure 2 fast path as the overhauled terminus runs it: the decoded
    header's wire memo is pre-seeded, so re-encode is a dictionary hit."""
    in_secret = pairwise_secret("10.0.0.1", "10.0.0.2")
    out_secret = pairwise_secret("10.0.0.1", "10.0.0.3")
    rx = PSPContext(in_secret)
    sender = PSPContext(in_secret)
    tx = PSPContext(out_secret)
    cache = DecisionCache()
    key = CacheKey("10.0.0.2", 2, 123456)
    cache.install(key, Decision.forward("10.0.0.3"))
    wire = sender.seal(header.encode())

    def fast_path():
        decoded = ILPHeader.decode(rx.open(wire))
        decision = cache.lookup(
            CacheKey("10.0.0.2", decoded.service_id, decoded.connection_id)
        )
        assert decision is not None
        return tx.seal(decoded.encode())

    out = benchmark(fast_path)
    assert len(out) > 0

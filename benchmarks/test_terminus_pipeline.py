"""Terminus flow-run batching benchmark: per-packet vs batched forwarding.

PR 1 made seal/open ~3.8× faster, leaving per-packet overhead *around* the
crypto (object construction, repeated decision-cache lookups for the same
flow, per-packet simulator events) as the dominant cost of
``terminus_forward``. The flow-run batched pipeline amortizes that work
over runs of same-flow packets; this module measures the gap and guards
it in CI:

* ``terminus_forward`` per-packet vs ``receive_batch`` pps on a
  flow-local burst, with the **relative** regression gate
  ``batched ≥ 2× per-packet`` (same run, same machine — container speed
  cannot flake it);
* a flow-locality sweep (1, 8, 64 flows per burst, contiguous blocks) plus
  the fully interleaved worst case (every run has length 1);
* the burst-sharding gate: batched vs per-packet on the fully
  *interleaved* 64-flow burst — the workload sharding exists for — with
  its own ``batched ≥ 2× per-packet`` relative gate (pre-sharding, the
  batched path gained ~nothing here: 22.2k vs 141.4k pps flow-local);
* the cold-storm gate: the same interleaved 64-flow burst with the
  decision cache wiped before every iteration, so *every* flow takes the
  slow path — per-packet punting (one IPC round trip per packet) vs the
  coalesced miss path (one lead punt per flow, batched per span, with
  followers drained off the fresh install), ``coalesced ≥ 2×
  per-packet`` relative gate;
* the observability overhead gate: the warm flow-local burst with obs
  disabled (shared no-op recorder) vs armed-but-quiet (``sample_every=0``)
  vs fully sampled, with the relative gate ``quiet ≥ 0.97 × disabled``
  (the ≤3% disabled-overhead budget of the obs subsystem);
* a netsim engine microbench: event churn (schedule + dispatch) and
  timer re-arm throughput on the tuple-heap event loop, plus the
  lazy-cancel ledger (``pending`` vs ``pending_raw``) under a
  cancel-heavy load;
* the netsim burst-delivery event count: a back-to-back burst crosses a
  link as one coalesced simulator event instead of one event per frame.

``BENCH_terminus.json`` is written at the repo root so the perf
trajectory stays comparable across PRs (next to ``BENCH_crypto.json``).

Run directly:
    PYTHONPATH=src python -m pytest benchmarks/test_terminus_pipeline.py -q -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.decision_cache import CacheKey, Decision
from repro.core.ilp import ILPHeader, TLV
from repro.core.packet import ILPPacket, L3Header, make_payload
from repro.core.psp import PSPContext, pairwise_secret
from repro.core.service_module import ServiceModule, Verdict
from repro.core.service_node import ServiceNode
from repro.netsim import Simulator

_RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_terminus.json"
_results: dict[str, dict] = {}

SN_ADDR = "10.0.0.1"
INGRESS = "10.0.0.2"
EGRESS = "10.0.0.3"
BURST = 1024


def _make_rig():
    """An SN whose terminus transmits into a counting sink."""
    sim = Simulator()
    node = ServiceNode(sim, "sn", SN_ADDR)
    delivered = [0]

    def sink(peer: str, packet: ILPPacket) -> bool:
        delivered[0] += 1
        return True

    node.terminus._transmit = sink
    secret_in = pairwise_secret(SN_ADDR, INGRESS)
    node.keystore.establish(INGRESS, secret_in)
    node.keystore.establish(EGRESS, pairwise_secret(SN_ADDR, EGRESS))
    return node, PSPContext(secret_in), delivered


def _header_bytes(conn: int, service: int = 2) -> bytes:
    h = ILPHeader(service_id=service, connection_id=conn)
    h.set_str(TLV.DEST_ADDR, "192.168.0.77")
    h.set_str(TLV.SRC_HOST, "192.168.0.12")
    return h.encode()


def _flow_local_burst(tx: PSPContext, flows: int, interleaved: bool = False):
    """A burst of ``BURST`` packets over ``flows`` connections.

    Contiguous per-flow blocks by default (runs of ``BURST/flows``);
    ``interleaved`` round-robins the flows so every run has length 1.
    """
    payload = make_payload(b"x" * 64)
    headers = [_header_bytes(conn) for conn in range(1, flows + 1)]
    if interleaved:
        order = [headers[i % flows] for i in range(BURST)]
    else:
        per_flow = BURST // flows
        order = [h for h in headers for _ in range(per_flow)]
    return [
        ILPPacket(
            l3=L3Header(src=INGRESS, dst=SN_ADDR),
            ilp_wire=tx.seal(h),
            payload=payload,
        )
        for h in order
    ]


def _measure_pps(process, make_burst, min_seconds: float = 0.3) -> float:
    process(make_burst())  # warm schedules/memos outside the timed region
    total = 0
    elapsed = 0.0
    while elapsed < min_seconds:
        burst = make_burst()
        t0 = time.perf_counter()
        process(burst)
        elapsed += time.perf_counter() - t0
        total += len(burst)
    return total / elapsed


def test_batched_vs_per_packet_forward():
    """The CI regression gate: batched ≥ 2× per-packet, same run."""
    node, tx, _ = _make_rig()
    for conn in range(1, 65):
        node.cache.install(
            CacheKey(INGRESS, 2, conn), Decision.forward(EGRESS)
        )
    terminus = node.terminus
    receive = terminus.receive

    def per_packet(burst):
        for packet in burst:
            receive(packet)

    per_packet_pps = _measure_pps(
        per_packet, lambda: _flow_local_burst(tx, flows=1)
    )
    batched_pps = _measure_pps(
        terminus.receive_batch, lambda: _flow_local_burst(tx, flows=1)
    )
    speedup = batched_pps / per_packet_pps
    _results["terminus_forward"] = {
        "per_packet_pps": round(per_packet_pps, 1),
        "batched_pps": round(batched_pps, 1),
        "speedup": round(speedup, 2),
        "burst": BURST,
        "us_per_op_batched": round(1e6 / batched_pps, 3),
    }
    assert terminus.stats.drops_auth == 0
    assert terminus.stats.packets_out == terminus.stats.packets_in
    assert speedup >= 2.0, (
        f"flow-run batching gained only {speedup:.2f}x over per-packet "
        f"({batched_pps:.0f} vs {per_packet_pps:.0f} pps); gate is 2x"
    )


def test_flow_locality_sweep():
    """Batched pps vs run length: 1, 8, 64 flows/burst + interleaved."""
    sweep = {}
    for flows in (1, 8, 64):
        node, tx, _ = _make_rig()
        for conn in range(1, flows + 1):
            node.cache.install(
                CacheKey(INGRESS, 2, conn), Decision.forward(EGRESS)
            )
        pps = _measure_pps(
            node.terminus.receive_batch,
            lambda: _flow_local_burst(tx, flows=flows),
            min_seconds=0.5,
        )
        sweep[str(flows)] = {
            "pps": round(pps, 1),
            "run_length": BURST // flows,
        }
        assert node.terminus.stats.packets_out == node.terminus.stats.packets_in

    # Worst case: fully interleaved 64 flows, every run is one packet long.
    node, tx, _ = _make_rig()
    for conn in range(1, 65):
        node.cache.install(
            CacheKey(INGRESS, 2, conn), Decision.forward(EGRESS)
        )
    pps = _measure_pps(
        node.terminus.receive_batch,
        lambda: _flow_local_burst(tx, flows=64, interleaved=True),
        min_seconds=0.5,
    )
    sweep["64_interleaved"] = {"pps": round(pps, 1), "run_length": 1}
    _results["flow_locality"] = sweep

    # Longer runs must never be slower than shorter ones (monotone gain).
    assert sweep["1"]["pps"] >= sweep["64"]["pps"] * 0.9


def test_interleaved_sharding_gate():
    """Sharding gate: batched ≥ 2× per-packet on the interleaved burst.

    64 flows round-robined packet-by-packet — every flow run is one
    packet long, so all the gain here comes from the sharding stage
    regrouping the burst by flow key (and its batched lookup and gather
    egress), not from run coalescing. Relative gate, same run: container
    speed cannot flake it.
    """
    node, tx, _ = _make_rig()
    for conn in range(1, 65):
        node.cache.install(
            CacheKey(INGRESS, 2, conn), Decision.forward(EGRESS)
        )
    terminus = node.terminus
    receive = terminus.receive

    def per_packet(burst):
        for packet in burst:
            receive(packet)

    make_burst = lambda: _flow_local_burst(tx, flows=64, interleaved=True)
    per_packet_pps = _measure_pps(per_packet, make_burst)
    batched_pps = _measure_pps(terminus.receive_batch, make_burst)
    speedup = batched_pps / per_packet_pps
    _results["interleaved_sharding"] = {
        "per_packet_pps": round(per_packet_pps, 1),
        "batched_pps": round(batched_pps, 1),
        "speedup": round(speedup, 2),
        "flows": 64,
        "run_length": 1,
    }
    assert terminus.stats.drops_auth == 0
    assert terminus.stats.packets_out == terminus.stats.packets_in
    assert speedup >= 2.0, (
        f"burst sharding gained only {speedup:.2f}x over per-packet on the "
        f"interleaved burst ({batched_pps:.0f} vs {per_packet_pps:.0f} pps); "
        "gate is 2x"
    )


class _InstallOnPunt(ServiceModule):
    """Forward + install on every punt: the storm's flows become warm."""

    SERVICE_ID = 2
    NAME = "storm-installer"

    def handle_packet(self, header, packet):
        verdict = Verdict.forward(EGRESS, header, packet.payload)
        verdict.installs.append(
            (
                CacheKey(packet.l3.src, 2, header.connection_id),
                Decision.forward(EGRESS),
            )
        )
        return verdict


def test_cold_storm():
    """Cold-storm gate: coalesced miss path ≥ 2× per-packet, same run.

    The 1024-packet, 64-flow interleaved burst again, but the decision
    cache is wiped before every iteration (the post-crash / flash-crowd
    shape), so every flow starts cold. Per-packet processing pays one
    marshalled IPC punt per lead packet and a scalar lookup per
    follower; the coalesced path punts all 64 leads in one
    ``invoke_batch`` round trip and drains the followers off the freshly
    installed decisions through the batched fast path. Relative gate,
    same run: container speed cannot flake it.
    """
    node, tx, _ = _make_rig()
    node.env.load(_InstallOnPunt())
    terminus = node.terminus
    receive = terminus.receive
    cache = node.cache

    def cold_burst():
        cache.evict_random_fraction(1.0)  # untimed: runs in make_burst
        return _flow_local_burst(tx, flows=64, interleaved=True)

    def per_packet(burst):
        for packet in burst:
            receive(packet)

    per_packet_pps = _measure_pps(per_packet, cold_burst)
    batched_pps = _measure_pps(terminus.receive_batch, cold_burst)
    speedup = batched_pps / per_packet_pps
    channel = terminus.channel.stats
    queue = terminus.miss_queue
    _results["cold_storm"] = {
        "per_packet_pps": round(per_packet_pps, 1),
        "batched_pps": round(batched_pps, 1),
        "speedup": round(speedup, 2),
        "flows": 64,
        "burst": BURST,
        "max_batch": channel.max_batch,
    }
    assert terminus.stats.drops_auth == 0
    assert terminus.stats.packets_out == terminus.stats.packets_in
    # The coalesced path actually engaged: full-width lead batches, and
    # every parked follower drained through the installed fast path.
    assert channel.max_batch == 64
    assert queue.live == 0
    assert queue.stats.drained_fast == queue.stats.parked > 0
    assert speedup >= 2.0, (
        f"miss coalescing gained only {speedup:.2f}x over per-packet on the "
        f"cold storm ({batched_pps:.0f} vs {per_packet_pps:.0f} pps); "
        "gate is 2x"
    )


def test_obs_overhead_gate():
    """Observability overhead gate: disabled obs costs ≤ 3%, same run.

    Three arms over the identical warm flow-local burst:

    * ``disabled`` — the default shared :data:`NULL_RECORDER` (what every
      uninstrumented run pays: one attr load + flag check per stage);
    * ``quiet`` — recorder attached with ``sample_every=0`` (the armed
      guard path plus latency-histogram recording, zero spans);
    * ``sampled`` — ``sample_every=1``, every trace recorded into a
      bounded ring (the full price of observability, informational).

    The gate is **relative, same run**: quiet ≥ 0.97 × disabled, so
    container speed cannot flake it. Trials interleave across arms
    (best-of-3 each) to decorrelate clock drift. Absolute numbers land
    in ``BENCH_terminus.json`` under ``obs_overhead`` for the cross-PR
    trajectory.
    """

    from repro.obs import NULL_RECORDER

    # One rig for every arm, toggled between trials: identical objects,
    # dict layouts, and allocator state, so the ratio reflects only the
    # instrumentation branches — not per-process layout luck.
    node, tx, _ = _make_rig()
    for conn in range(1, 65):
        node.cache.install(CacheKey(INGRESS, 2, conn), Decision.forward(EGRESS))
    obs = node.enable_observability(sample_every=0, capacity=4096)
    terminus = node.terminus

    def set_arm(arm: str) -> None:
        if arm == "disabled":
            terminus.obs = None
            terminus.recorder = NULL_RECORDER
            terminus.channel.recorder = NULL_RECORDER
        else:
            obs.recorder.sample_every = 1 if arm == "sampled" else 0
            terminus.obs = obs
            terminus.recorder = obs.recorder
            terminus.channel.recorder = obs.recorder

    arms = ("disabled", "quiet", "sampled")
    best = dict.fromkeys(arms, 0.0)
    for round_i in range(5):
        for arm_i in range(len(arms)):
            arm = arms[(round_i + arm_i) % len(arms)]  # rotate vs drift
            set_arm(arm)
            pps = _measure_pps(
                terminus.receive_batch, lambda: _flow_local_burst(tx, flows=1)
            )
            best[arm] = max(best[arm], pps)
    quiet_ratio = best["quiet"] / best["disabled"]
    sampled_ratio = best["sampled"] / best["disabled"]
    _results["obs_overhead"] = {
        "disabled_pps": round(best["disabled"], 1),
        "quiet_pps": round(best["quiet"], 1),
        "sampled_pps": round(best["sampled"], 1),
        "quiet_ratio": round(quiet_ratio, 4),
        "sampled_ratio": round(sampled_ratio, 4),
        "gate": "quiet >= 0.97 * disabled",
    }
    # The armed arms really observed: every armed-trial egress recorded
    # into the latency histogram, and the sampled arm captured spans.
    assert obs.terminus_latency.count > 0
    assert len(obs.recorder) > 0
    assert quiet_ratio >= 0.97, (
        f"quiet observability costs {(1 - quiet_ratio) * 100:.1f}% "
        f"({best['quiet']:.0f} vs {best['disabled']:.0f} pps); gate is 3%"
    )


VICTIM_SERVICE = 3
VICTIM_EGRESS = "10.0.0.4"
HEALTHY_FLOWS = 56
VICTIM_FLOWS = 8


class _VictimModule(ServiceModule):
    """Forwards without installing — its flows stay cold every burst."""

    SERVICE_ID = VICTIM_SERVICE
    NAME = "victim-bench"

    def handle_packet(self, header, packet):
        return Verdict.forward(VICTIM_EGRESS, header, packet.payload)


def _make_overload_rig():
    """An SN whose sink counts deliveries per egress peer."""
    sim = Simulator()
    node = ServiceNode(sim, "sn", SN_ADDR)
    counts: dict[str, int] = {}

    def sink(peer: str, packet: ILPPacket) -> bool:
        counts[peer] = counts.get(peer, 0) + 1
        return True

    node.terminus._transmit = sink
    secret_in = pairwise_secret(SN_ADDR, INGRESS)
    node.keystore.establish(INGRESS, secret_in)
    for peer in (EGRESS, VICTIM_EGRESS):
        node.keystore.establish(peer, pairwise_secret(SN_ADDR, peer))
    for conn in range(1, HEALTHY_FLOWS + 1):
        node.cache.install(CacheKey(INGRESS, 2, conn), Decision.forward(EGRESS))
    node.env.load(_VictimModule())
    return node, PSPContext(secret_in), counts


def _mixed_burst(tx: PSPContext):
    """BURST packets round-robined over 56 healthy + 8 victim flows."""
    payload = make_payload(b"x" * 64)
    headers = [_header_bytes(conn) for conn in range(1, HEALTHY_FLOWS + 1)] + [
        _header_bytes(conn, service=VICTIM_SERVICE)
        for conn in range(1, VICTIM_FLOWS + 1)
    ]
    return [
        ILPPacket(
            l3=L3Header(src=INGRESS, dst=SN_ADDR),
            ilp_wire=tx.seal(headers[i % len(headers)]),
            payload=payload,
        )
        for i in range(BURST)
    ]


def _measure_healthy_goodput(terminus, tx, counts, min_seconds=0.3) -> float:
    """Healthy-flow deliveries (to EGRESS) per wall second, mixed bursts."""
    terminus.receive_batch(_mixed_burst(tx))  # warm-up (trips breakers etc.)
    base = counts.get(EGRESS, 0)
    elapsed = 0.0
    while elapsed < min_seconds:
        burst = _mixed_burst(tx)
        t0 = time.perf_counter()
        terminus.receive_batch(burst)
        elapsed += time.perf_counter() - t0
    return (counts.get(EGRESS, 0) - base) / elapsed


def test_overload_recovery():
    """Overload gate: healthy goodput under a hung service ≥ 0.8× baseline.

    64-flow mixed interleaved traffic — 56 healthy warm flows plus 8 cold
    flows on a victim service — in three arms, same run:

    * ``baseline`` — the victim service is healthy and its flows warm:
      every packet rides the fast path (the no-fault reference);
    * ``unprotected`` — the victim hangs with no overload policy: every
      victim lead punts and times out at the cost-model deadline, burning
      slow-path work each burst (informational);
    * ``protected`` — the victim hangs behind a fail-closed policy with a
      circuit breaker: after the first bursts trip it, victim packets
      short-circuit to degradation without crossing the boundary.

    The CI gate is **relative, same run** (container speed cannot flake
    it): protected healthy goodput ≥ 0.8× the no-fault baseline. A
    sim-clocked coda measures the breaker lifecycle and gates recovery:
    closed again within 2 sim-seconds of the fault clearing.
    """
    from repro.core.overload import BreakerConfig, ServicePolicy
    from repro.core.overload import BreakerState

    # Arm 1: no-fault baseline (victim flows warm too).
    node, tx, counts = _make_overload_rig()
    for conn in range(1, VICTIM_FLOWS + 1):
        node.cache.install(
            CacheKey(INGRESS, VICTIM_SERVICE, conn),
            Decision.forward(VICTIM_EGRESS),
        )
    baseline_pps = _measure_healthy_goodput(node.terminus, tx, counts)

    # Arm 2: hung victim, no policy — the damage being protected against.
    node, tx, counts = _make_overload_rig()
    node.env.inject_hang(VICTIM_SERVICE)
    unprotected_pps = _measure_healthy_goodput(node.terminus, tx, counts)

    # Arm 3: hung victim behind deadline + breaker + fail-closed policy.
    node, tx, counts = _make_overload_rig()
    node.env.inject_hang(VICTIM_SERVICE)
    node.set_service_policy(
        VICTIM_SERVICE,
        ServicePolicy(
            deadline=1e-3,
            breaker=BreakerConfig(min_samples=2, ewma_alpha=1.0),
        ),
    )
    protected_pps = _measure_healthy_goodput(node.terminus, tx, counts)
    guard = node.terminus.overload
    breaker = guard.breakers[VICTIM_SERVICE]
    # The protection actually engaged, and memory stayed bounded.
    assert breaker.state is BreakerState.OPEN
    assert guard.stats.short_circuits > 0
    assert counts.get(VICTIM_EGRESS, 0) == 0  # fail-closed leaked nothing
    assert node.terminus.miss_queue.live == 0
    assert node.cache.stale_count <= node.cache.stale_capacity

    # Sim-clocked breaker lifecycle: trip under the fault, then recover
    # once it clears — within the 2-sim-second budget.
    node, tx, _counts = _make_overload_rig()
    sim = node.sim
    node.env.inject_hang(VICTIM_SERVICE)
    node.set_service_policy(
        VICTIM_SERVICE,
        ServicePolicy(
            deadline=1e-3,
            breaker=BreakerConfig(
                min_samples=2,
                ewma_alpha=1.0,
                open_duration=0.5,
                half_open_probes=2,
                close_after=1,
            ),
        ),
    )

    def punt_victim(conn: int) -> None:
        header = _header_bytes(conn, service=VICTIM_SERVICE)
        node.terminus.receive(
            ILPPacket(
                l3=L3Header(src=INGRESS, dst=SN_ADDR),
                ilp_wire=tx.seal(header),
                payload=make_payload(b"x" * 64),
            )
        )

    fault_cleared_at = 1.0
    for i in range(4):  # fault window: punts time out, breaker trips
        sim.schedule_at(0.1 + i * 0.1, punt_victim, i + 1)
    sim.schedule_at(fault_cleared_at, node.env.clear_service_fault, VICTIM_SERVICE)
    for i in range(4):  # post-fault probes close the breaker
        sim.schedule_at(1.6 + i * 0.1, punt_victim, i + 1)
    sim.run(3.0)
    breaker = node.terminus.overload.breakers[VICTIM_SERVICE]
    trip_at = next(
        at for at, state in breaker.transitions if state is BreakerState.OPEN
    )
    recovered_at = breaker.recovered_at()
    assert recovered_at is not None
    recovery_lag = recovered_at - fault_cleared_at
    assert breaker.state is BreakerState.CLOSED

    protected_ratio = protected_pps / baseline_pps
    _results["overload"] = {
        "baseline_healthy_pps": round(baseline_pps, 1),
        "unprotected_healthy_pps": round(unprotected_pps, 1),
        "protected_healthy_pps": round(protected_pps, 1),
        "protected_ratio": round(protected_ratio, 3),
        "unprotected_ratio": round(unprotected_pps / baseline_pps, 3),
        "healthy_flows": HEALTHY_FLOWS,
        "victim_flows": VICTIM_FLOWS,
        "burst": BURST,
        "breaker_trip_sim_s": round(trip_at, 3),
        "breaker_recovery_lag_sim_s": round(recovery_lag, 3),
        "gate": "protected healthy goodput >= 0.8x no-fault baseline; "
        "breaker closed within 2 sim-s of fault clearing",
    }
    assert recovery_lag <= 2.0, (
        f"breaker took {recovery_lag:.2f} sim-s after the fault cleared to "
        "close; budget is 2.0"
    )
    assert protected_ratio >= 0.8, (
        f"healthy goodput under protection is only {protected_ratio:.2f}x "
        f"baseline ({protected_pps:.0f} vs {baseline_pps:.0f} pps); gate is 0.8x"
    )


def test_netsim_engine_event_throughput():
    """Event-loop churn: schedule+dispatch and timer re-arm rates."""
    sim = Simulator()
    n = 200_000

    # Raw churn: schedule each event inside the previous one's callback,
    # the self-clocking shape every netsim component reduces to.
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n:
            sim.post(1.0, tick)

    sim.post(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    churn_eps = n / (time.perf_counter() - t0)

    # Timer re-arm: restart the same Timer object from its own callback —
    # the keepalive/failover idiom — exercising entry recycling.
    from repro.netsim import Timer

    sim2 = Simulator()
    fired = [0]

    def rearm():
        fired[0] += 1
        if fired[0] < n:
            timer.start(1.0)

    timer = Timer(sim2, rearm)
    timer.start(1.0)
    t0 = time.perf_counter()
    sim2.run()
    rearm_eps = n / (time.perf_counter() - t0)

    # Lazy cancel: cancel 75% of a scheduled batch; the live count must
    # track immediately while the heap compacts behind the threshold.
    sim3 = Simulator()
    handles = [sim3.schedule(float(i), lambda: None) for i in range(4096)]
    for handle in handles[::4] + handles[1::4] + handles[2::4]:
        handle.cancel()
    live = sim3.pending
    raw = sim3.pending_raw
    assert live == 1024
    assert raw >= live  # compaction may or may not have run by now
    sim3.run()

    _results["netsim_engine"] = {
        "events": n,
        "churn_events_per_sec": round(churn_eps, 1),
        "timer_rearm_per_sec": round(rearm_eps, 1),
        "cancel_live_pending": live,
        "cancel_raw_pending": raw,
    }
    assert count[0] == n
    assert fired[0] == n


def test_netsim_burst_delivery_events():
    """A back-to-back burst crosses a link as one delivery event."""
    sim = Simulator()
    sn_a = ServiceNode(sim, "a", "10.0.0.1")
    sn_b = ServiceNode(sim, "b", "10.0.0.2")
    sn_a.establish_pipe(sn_b)
    header = ILPHeader(service_id=2, connection_id=9)
    payload = make_payload(b"burst")
    frames = 256
    for _ in range(frames):
        sn_a.emit(sn_b.address, header, payload)
    events = sim.run_until_idle()
    assert sn_b.terminus.stats.packets_in == frames
    _results["netsim_burst"] = {
        "frames": frames,
        "delivery_events": events,
        "frames_per_event": round(frames / events, 1),
    }
    assert events == 1, (
        f"burst of {frames} frames took {events} delivery events; "
        "coalescing should schedule exactly one"
    )


def teardown_module(module):
    if not _results:
        return
    _results["meta"] = {
        "note": "ops on one core of this container; header = 2-TLV ILP header",
        "burst": BURST,
    }
    _RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
    print(f"\nwrote {_RESULTS_PATH}")
    for name in (
        "terminus_forward",
        "flow_locality",
        "interleaved_sharding",
        "cold_storm",
        "overload",
        "obs_overhead",
        "netsim_engine",
        "netsim_burst",
    ):
        if name in _results:
            print(f"  {name}: {_results[name]}")

"""A-BALANCE — proactive domain management (Appendix C closing remark).

"The likely bottleneck is the total traffic being handled by any SN,
which can be load-balanced by proactive domain management." We skew all
hosts onto one SN of a 4-SN edomain, run periodic rebalancing, and report
the load imbalance (max/mean packets per SN per interval) before and
after convergence.
"""

from __future__ import annotations

import pytest

from repro import WellKnownService
from repro.core.loadbalance import EdomainBalancer
from repro.scenarios import metro_federation

from .conftest import report

_results: list[dict] = []


def _imbalance(loads: dict[str, int]) -> float:
    mean = sum(loads.values()) / len(loads)
    return max(loads.values()) / mean if mean else 0.0


def _run(rebalance: bool) -> tuple[float, float]:
    handles = metro_federation(n_edomains=1, sns_per_edomain=4, hosts_per_sn=0)
    net = handles.net
    hot = handles.sns[0]
    hosts = {}
    for i in range(8):
        host = net.add_host(hot, name=f"h{i}")
        hosts[host.address] = host
    host_list = list(hosts.values())
    balancer = EdomainBalancer(
        net.edomains["edomain-0"], hosts, lookup=net.lookup, imbalance_factor=1.5
    )

    def one_round() -> dict[str, int]:
        for i, src in enumerate(host_list):
            dst = host_list[(i + 1) % len(host_list)]
            conn = src.connect(
                WellKnownService.IP_DELIVERY, dest_addr=dst.address, allow_direct=False
            )
            for _ in range(10):
                src.send(conn, b"w")
        net.run(2.0)
        return balancer._load_since_last()

    first = _imbalance(one_round())
    if rebalance:
        for _ in range(6):  # several management intervals
            loads = one_round()
            plan = balancer.plan(loads)
            for migration in plan.migrations:
                balancer._migrate(migration)
            balancer.history.append(plan)
    else:
        for _ in range(6):
            one_round()
    final = _imbalance(one_round())
    return first, final


@pytest.mark.parametrize("rebalance", [False, True], ids=["static", "managed"])
def test_rebalancing_reduces_imbalance(benchmark, rebalance):
    first, final = benchmark.pedantic(_run, args=(rebalance,), rounds=1, iterations=1)
    _results.append(
        {
            "mode": "managed" if rebalance else "static",
            "initial max/mean": f"{first:.2f}",
            "final max/mean": f"{final:.2f}",
        }
    )
    if rebalance:
        assert final < first  # management reduced the skew
    else:
        assert final == pytest.approx(first, rel=0.05)  # skew persists


def teardown_module(module):
    if _results:
        report(
            "A-BALANCE: proactive domain management",
            _results,
            ["mode", "initial max/mean", "final max/mean"],
        )

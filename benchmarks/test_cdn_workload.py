"""A-CDN — caching bundle under a realistic Zipf request workload.

Not a paper table (the paper doesn't evaluate its CDN), but the workhorse
validation of the caching bundle: drive Zipf-skewed requests (α≈0.9, the
measured CDN popularity regime) against edge caches of varying size and
compare the achieved hit rate with the analytic ideal (mass of the
hottest C objects). LRU under Zipf should track the ideal closely.
"""

from __future__ import annotations

import pytest

from repro.netsim.workloads import ZipfRequestStream
from repro.services.caching import CacheStore

from .conftest import report

CATALOG = 2_000
REQUESTS = 30_000
ALPHA = 0.9

_results: list[dict] = []


def _run_cache(slots: int) -> tuple[float, float]:
    stream = ZipfRequestStream(catalog_size=CATALOG, alpha=ALPHA, seed=42)
    store = CacheStore(capacity=slots, default_ttl=1e9)
    for i, obj in enumerate(stream.take(REQUESTS)):
        url = f"/object/{obj}"
        if store.get(url, now=float(i)) is None:
            store.put(url, b"body", now=float(i))
    return store.hit_rate, stream.expected_hit_rate(slots)


@pytest.mark.parametrize("slots", [20, 100, 500, 2000])
def test_zipf_hit_rate_tracks_ideal(benchmark, slots):
    achieved, ideal = benchmark.pedantic(_run_cache, args=(slots,), rounds=1, iterations=1)
    _results.append(
        {
            "cache slots": slots,
            "achieved hit rate": f"{achieved:.3f}",
            "ideal (top-C mass)": f"{ideal:.3f}",
        }
    )
    # LRU trails the static (LFU-omniscient) ideal — by the well-known
    # LRU-vs-LFU gap at alpha<1 plus compulsory misses — but stays within
    # 20 points and always achieves a substantial fraction of it.
    assert ideal - 0.20 <= achieved <= ideal
    assert achieved > 0.4 * ideal


def test_bigger_cache_never_hurts(benchmark):
    def sweep():
        return [_run_cache(n)[0] for n in (50, 200, 800)]

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert rates == sorted(rates)


def teardown_module(module):
    if _results:
        report(
            "A-CDN: edge cache vs Zipf workload (alpha=0.9)",
            _results,
            ["cache slots", "achieved hit rate", "ideal (top-C mass)"],
        )

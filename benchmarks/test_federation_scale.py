"""A-SCALE — federation-wide scaling sweep.

How do the architecture's fixed costs grow with federation size? §3.2
requires full-mesh edomain peering (borne out as cheap by C-PEER at the
tunnel level); here we measure the *system-level* costs as edomains and
SNs multiply: pipes established, deployment work, per-packet delivery
latency, and end-to-end goodput across random host pairs.

Expected shape: border pipes grow O(edomains²) (small constants), SN
deployments O(SNs × services), and per-pair delivery latency stays flat —
interconnection does not degrade as the federation grows.
"""

from __future__ import annotations

import random

import pytest

from repro import WellKnownService
from repro.scenarios import metro_federation

from .conftest import report

_results: list[dict] = []


def _run_scale(n_edomains: int, sns_per: int) -> dict:
    handles = metro_federation(
        n_edomains=n_edomains, sns_per_edomain=sns_per, hosts_per_sn=1
    )
    net = handles.net
    rng = random.Random(5)
    pairs = [
        tuple(rng.sample(range(len(handles.hosts)), 2)) for _ in range(20)
    ]
    latencies = []
    delivered = 0
    for src_i, dst_i in pairs:
        src, dst = handles.hosts[src_i], handles.hosts[dst_i]
        conn = src.connect(
            WellKnownService.IP_DELIVERY, dest_addr=dst.address, allow_direct=False
        )
        start = net.sim.now
        arrivals = []
        dst.rx_tap = lambda frame, link: arrivals.append(net.sim.now)
        src.send(conn, b"probe")
        net.run(1.0)
        if arrivals:
            delivered += 1
            latencies.append(arrivals[0] - start)
        dst.rx_tap = None
    latencies.sort()
    n_borders = sum(
        1
        for sn in handles.sns
        for peer in sn.keystore.contexts
        if net.directory.edomain_of(peer)
        and net.directory.edomain_of(peer) != sn.edomain_name
    )
    return {
        "edomains": n_edomains,
        "sns": len(handles.sns),
        "delivered": delivered,
        "median_ms": latencies[len(latencies) // 2] * 1e3 if latencies else None,
        "border_pipe_ends": n_borders,
    }


@pytest.mark.parametrize(
    "n_edomains,sns_per", [(2, 2), (4, 3), (8, 3)]
)
def test_federation_scale(benchmark, n_edomains, sns_per):
    result = benchmark.pedantic(
        _run_scale, args=(n_edomains, sns_per), rounds=1, iterations=1
    )
    assert result["delivered"] == 20  # universal reachability at any size
    _results.append(
        {
            "edomains": result["edomains"],
            "SNs": result["sns"],
            "delivered": f"{result['delivered']}/20",
            "median_ms": f"{result['median_ms']:.2f}",
            "border pipe-ends": result["border_pipe_ends"],
        }
    )


def test_latency_flat_as_federation_grows(benchmark):
    def sweep():
        return [_run_scale(n, 2)["median_ms"] for n in (2, 6)]

    small, large = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # The path is always ≤ host→SN→border→border→SN→host regardless of
    # federation size: median latency must not grow with edomain count.
    assert large < small * 1.5


def teardown_module(module):
    if _results:
        report(
            "A-SCALE: federation growth sweep",
            _results,
            ["edomains", "SNs", "delivered", "median_ms", "border pipe-ends"],
        )

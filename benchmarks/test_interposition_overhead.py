"""A-POSE — the cost of interposition itself (§4 motivation).

§4 opens by noting today's interposition "is computationally inefficient
(see [72] for an exploration of interposition overheads in service
meshes)" because middleboxes terminate and re-originate connections. ILP
avoids the re-termination (shared pairwise keys, no per-connection
handshake) but interposition still costs two SN traversals. This bench
quantifies, in simulated time on identical topologies:

* direct host↔host (same subnet, §3.2 direct connectivity);
* one-SN path (both hosts on the same SN);
* two-SN path (the §3.2 typical path);
* two-SN + pass-through enterprise SN (three interpositions).

Expected shape: each interposition adds roughly one terminus latency +
propagation; nothing superlinear.
"""

from __future__ import annotations

import pytest

from repro import InterEdge, WellKnownService
from repro.netsim import Link
from repro.services import standard_registry

from .conftest import report

_results: list[dict] = []


def _net():
    net = InterEdge(registry=standard_registry())
    net.create_edomain("west")
    net.create_edomain("east")
    net.add_sn("west")
    net.add_sn("east")
    net.peer_all()
    net.deploy_required_services()
    return net


def _latency(net, sender, receiver, conn, n=10) -> float:
    samples = []
    for _ in range(n):
        start = net.sim.now
        arrivals = []
        receiver.rx_tap = lambda frame, link: arrivals.append(net.sim.now)
        sender.send(conn, b"m" * 64)
        net.run(1.0)
        if arrivals:
            samples.append(arrivals[0] - start)
    samples.sort()
    return samples[len(samples) // 2]


def _measure_direct() -> float:
    net = _net()
    sn = net.all_sns()[0]
    a = net.add_host(sn, name="a", subnet="192.168.0.0/24", address="192.168.0.10")
    b = net.add_host(sn, name="b", subnet="192.168.0.0/24", address="192.168.0.11")
    Link(net.sim, a, b, latency=0.001)
    conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address)
    assert conn.direct_peer == b.address
    return _latency(net, a, b, conn)


def _measure_one_sn() -> float:
    net = _net()
    sn = net.all_sns()[0]
    a = net.add_host(sn, name="a")
    b = net.add_host(sn, name="b")
    conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False)
    return _latency(net, a, b, conn)


def _measure_two_sn() -> float:
    net = _net()
    sns = net.all_sns()
    a = net.add_host(sns[0], name="a")
    b = net.add_host(sns[1], name="b")
    conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False)
    return _latency(net, a, b, conn)


def _measure_passthrough() -> float:
    net = _net()
    sns = net.all_sns()
    from repro.core.service_node import ServiceNode
    from repro.services.firewall import ImposedFirewall, RuleSet

    gw = ServiceNode(net.sim, "gw", "10.99.0.1", edomain_name="west")
    gw.directory = net.directory
    net.directory.register(gw.address, "west", via=sns[0].address)
    gw.establish_pipe(sns[0], latency=0.001)
    gw.configure_pass_through(next_hop=sns[0].address, chain=[ImposedFirewall(RuleSet())])
    a = net.add_host(gw, name="a")
    b = net.add_host(sns[1], name="b")
    conn = a.connect(WellKnownService.IP_DELIVERY, dest_addr=b.address, allow_direct=False)
    return _latency(net, a, b, conn)


@pytest.mark.parametrize(
    "label,fn",
    [
        ("direct (0 SNs)", _measure_direct),
        ("same-SN (1 SN)", _measure_one_sn),
        ("typical (2 SNs)", _measure_two_sn),
        ("enterprise (3 SNs)", _measure_passthrough),
    ],
    ids=["direct", "one-sn", "two-sn", "passthrough"],
)
def test_interposition_ladder(benchmark, label, fn):
    median = benchmark.pedantic(fn, rounds=1, iterations=1)
    _results.append({"path": label, "median_ms": f"{median * 1e3:.3f}"})


def test_costs_are_monotone_and_linear(benchmark):
    def ladder():
        return (
            _measure_direct(),
            _measure_one_sn(),
            _measure_two_sn(),
            _measure_passthrough(),
        )

    d0, d1, d2, d3 = benchmark.pedantic(ladder, rounds=1, iterations=1)
    assert d0 < d1 < d2 < d3
    # Each added interposition costs about the same increment (no blowup):
    inc1, inc2 = d2 - d1, d3 - d2
    assert inc2 < 3 * inc1


def teardown_module(module):
    if _results:
        report(
            "A-POSE: interposition ladder (median latency)",
            _results,
            ["path", "median_ms"],
        )

"""A-INTER — ablation: border relay vs on-demand direct SN pipes (§3.2).

Inter-edomain traffic defaults to relaying through each edomain's border
SN; §3.2 allows establishing a direct SN↔SN pipe on demand. This ablation
measures end-to-end latency for both (simulated time on identical
topologies) and the relay's extra load on the border SNs.
"""

from __future__ import annotations

import pytest

from repro import InterEdge, WellKnownService
from repro.services import standard_registry

from .conftest import report

_results: list[dict] = []


def _build(direct: bool):
    net = InterEdge(registry=standard_registry())
    net.create_edomain("west")
    net.create_edomain("east")
    net.add_sn("west", name="border-w")
    inner_w = net.add_sn("west", name="inner-w")
    net.add_sn("east", name="border-e")
    inner_e = net.add_sn("east", name="inner-e")
    net.peer_all(internal_latency=0.002, border_latency=0.010)
    net.deploy_required_services()
    if direct:
        net.establish_direct(inner_w, inner_e, latency=0.011)
    client = net.add_host(inner_w, name="client")
    server = net.add_host(inner_e, name="server")
    return net, client, server, inner_w, inner_e


def _measure_latency(direct: bool, n_packets: int = 20) -> dict:
    net, client, server, inner_w, inner_e = _build(direct)
    conn = client.connect(
        WellKnownService.IP_DELIVERY,
        dest_addr=server.address,
        dest_sn=inner_e.address,
        allow_direct=False,
    )
    arrivals = []
    sent_at = []
    server.rx_tap = lambda frame, link: arrivals.append(net.sim.now)
    for _ in range(n_packets):
        sent_at.append(net.sim.now)
        client.send(conn, b"p" * 100)
        net.run(1.0)
    latencies = [a - s for a, s in zip(arrivals, sent_at)]
    border_w = net.edomains["west"].border_sn
    return {
        "median_latency_ms": sorted(latencies)[len(latencies) // 2] * 1e3,
        "border_packets": border_w.terminus.stats.packets_in,
        "hops": 3 if direct else 5,
    }


@pytest.mark.parametrize("direct", [False, True], ids=["relay", "direct"])
def test_interdomain_path(benchmark, direct):
    result = benchmark.pedantic(_measure_latency, args=(direct,), rounds=1, iterations=1)
    _results.append(
        {
            "path": "direct pipe" if direct else "border relay",
            "median_ms": f"{result['median_latency_ms']:.3f}",
            "border SN pkts": result["border_packets"],
        }
    )


def test_direct_beats_relay(benchmark):
    def both():
        return _measure_latency(False), _measure_latency(True)

    relay, direct = benchmark.pedantic(both, rounds=1, iterations=1)
    # The direct pipe removes two SN traversals; latency must drop.
    assert direct["median_latency_ms"] < relay["median_latency_ms"]
    # And the border SN is relieved of the transit load.
    assert direct["border_packets"] < relay["border_packets"]


def teardown_module(module):
    if _results:
        report(
            "A-INTER: relay vs on-demand direct pipes",
            _results,
            ["path", "median_ms", "border SN pkts"],
        )

"""A-QOS — last-hop QoS (§6.2): weight compliance and priority latency.

The paper's example: a household gives gaming high priority while
preserving bandwidth for streaming. We congest a simulated access link
and report (i) per-class goodput against configured WFQ weights and
(ii) the latency of priority traffic with and without QoS.
"""

from __future__ import annotations

import pytest

from repro import InterEdge, WellKnownService
from repro.services import QoSSpec, StreamClass, request_qos, standard_registry

from .conftest import report

_results: list[dict] = []

LINK_BPS = 1_000_000.0


def _world(with_qos: bool, weights=(3.0, 1.0)):
    net = InterEdge(registry=standard_registry())
    net.create_edomain("west")
    net.create_edomain("east")
    src_sn_a = net.add_sn("west")
    src_sn_b = net.add_sn("west")
    recv_sn = net.add_sn("east")
    net.peer_all()
    net.deploy_required_services()
    gamer = net.add_host(src_sn_a, name="game-server")
    streamer = net.add_host(src_sn_b, name="cdn")
    household = net.add_host(recv_sn, name="household")
    # The household's access link IS the bottleneck (the §6.2 premise):
    # everything the SN forwards to the host serializes at LINK_BPS.
    household.links[0].bandwidth_bps = LINK_BPS
    if with_qos:
        spec = QoSSpec(
            link_bps=LINK_BPS,
            classes=[
                StreamClass("gaming", f"{gamer.address}/32", priority=0, weight=1.0),
                StreamClass(
                    "streaming", f"{streamer.address}/32", priority=1, weight=weights[0]
                ),
            ],
        )
        request_qos(household, spec)
        net.run(0.5)
    return net, gamer, streamer, household, recv_sn


def _flood_and_measure(with_qos: bool) -> dict:
    net, gamer, streamer, household, recv_sn = _world(with_qos)
    game_conn = gamer.connect(
        WellKnownService.IP_DELIVERY, dest_addr=household.address, allow_direct=False
    )
    stream_conn = streamer.connect(
        WellKnownService.IP_DELIVERY, dest_addr=household.address, allow_direct=False
    )
    # Saturate with streaming, then inject latency-sensitive gaming.
    for _ in range(100):
        streamer.send(stream_conn, b"S" * 1000)
    net.run(0.01)
    game_sent_at = net.sim.now
    arrivals = {}

    def tap(frame, link):
        data = frame.payload.data if hasattr(frame, "payload") else b""
        if data.startswith(b"G") and "game" not in arrivals:
            arrivals["game"] = net.sim.now

    household.rx_tap = tap
    gamer.send(game_conn, b"G" * 100)
    net.run(3.0)
    game_latency = arrivals.get("game", float("inf")) - game_sent_at
    delivered = [p.data for _, p in household.delivered if p.data]
    return {
        "game_latency_ms": game_latency * 1e3,
        "stream_delivered": sum(1 for d in delivered if d.startswith(b"S")),
        "game_delivered": sum(1 for d in delivered if d.startswith(b"G")),
    }


@pytest.mark.parametrize("with_qos", [False, True], ids=["fifo", "qos"])
def test_gaming_latency_under_congestion(benchmark, with_qos):
    result = benchmark.pedantic(
        _flood_and_measure, args=(with_qos,), rounds=1, iterations=1
    )
    _results.append(
        {
            "setup": "priority QoS" if with_qos else "no QoS (FIFO)",
            "gaming latency ms": f"{result['game_latency_ms']:.2f}",
            "streaming pkts": result["stream_delivered"],
        }
    )
    assert result["game_delivered"] == 1


def test_qos_priority_cuts_latency(benchmark):
    def both():
        return _flood_and_measure(False), _flood_and_measure(True)

    fifo, qos = benchmark.pedantic(both, rounds=1, iterations=1)
    # Priority scheduling must let the gaming packet jump the bulk queue.
    assert qos["game_latency_ms"] < fifo["game_latency_ms"] / 2
    # ...without starving streaming entirely.
    assert qos["stream_delivered"] > 0


def test_wfq_weight_compliance(benchmark):
    """Two same-priority classes split a congested link by weight."""

    def run():
        net, src_a, src_b, household, recv_sn = _world(False)
        spec = QoSSpec(
            link_bps=LINK_BPS,
            classes=[
                StreamClass("a", f"{src_a.address}/32", priority=1, weight=3.0),
                StreamClass("b", f"{src_b.address}/32", priority=1, weight=1.0),
            ],
        )
        request_qos(household, spec)
        net.run(0.5)
        conn_a = src_a.connect(
            WellKnownService.IP_DELIVERY, dest_addr=household.address, allow_direct=False
        )
        conn_b = src_b.connect(
            WellKnownService.IP_DELIVERY, dest_addr=household.address, allow_direct=False
        )
        for _ in range(150):
            src_a.send(conn_a, b"A" * 800)
            src_b.send(conn_b, b"B" * 800)
        net.run(0.4)  # partially drain: both classes stay backlogged
        module = recv_sn.env.service(WellKnownService.LAST_HOP_QOS)
        shaper = module.shaper_for(household.address)
        return shaper.bytes_delivered("a"), shaper.bytes_delivered("b")

    served_a, served_b = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = served_a / max(1, served_b)
    _results.append(
        {
            "setup": "WFQ 3:1 weights",
            "gaming latency ms": "-",
            "streaming pkts": f"ratio={ratio:.2f}",
        }
    )
    assert ratio == pytest.approx(3.0, rel=0.3)


def teardown_module(module):
    if _results:
        report(
            "A-QOS: last-hop QoS under congestion",
            _results,
            ["setup", "gaming latency ms", "streaming pkts"],
        )

"""C-PEER — Appendix C "Direct peering": tunnel-mesh maintenance at scale.

Paper: a commodity 16-core server easily maintained **98,000** WireGuard
tunnels with symmetric key rotation every three minutes, costing **less
than half a core** and roughly **3.4 Mbps**.

We sweep tunnel counts up to 98,000 on the WireGuard-model mesh and report
(i) maintenance bandwidth (handshake+keepalive bytes per virtual second)
and (ii) core-equivalents (real CPU seconds per virtual second). The
claims to reproduce: both grow linearly, bandwidth lands in the single-
digit Mbps range, and CPU stays well under one core-equivalent at 98k.
"""

from __future__ import annotations

import pytest

from repro.wireguard import TunnelMesh

from .conftest import report

PAPER_TUNNELS = 98_000
PAPER_MBPS = 3.4
PAPER_CORES = 0.5

_results: list[dict] = []


def _run_mesh(n_tunnels: int, window: float = 360.0) -> dict:
    mesh = TunnelMesh("border-sn", rekey_interval=180.0, keepalive_interval=25.0)
    mesh.add_peers(n_tunnels)
    rep = mesh.advance(until=window)
    return {
        "tunnels": n_tunnels,
        "rekeys": rep.rekeys,
        "keepalives": rep.keepalives,
        "bandwidth_mbps": rep.bandwidth_mbps,
        "core_equivalents": rep.core_equivalents,
    }


@pytest.mark.parametrize("n_tunnels", [1_000, 10_000, 98_000])
def test_peering_scale(benchmark, n_tunnels):
    result = benchmark.pedantic(_run_mesh, args=(n_tunnels,), rounds=1, iterations=1)
    _results.append(
        {
            "tunnels": result["tunnels"],
            "rekeys/6min": result["rekeys"],
            "Mbps": f"{result['bandwidth_mbps']:.3f}",
            "core-equiv": f"{result['core_equivalents']:.4f}",
        }
    )
    # Every tunnel rekeyed twice in the 6-minute window.
    assert result["rekeys"] == 2 * n_tunnels


def test_peering_claims(benchmark):
    """The Appendix C claims at the paper's operating point."""
    result = benchmark.pedantic(
        _run_mesh, args=(PAPER_TUNNELS,), rounds=1, iterations=1
    )
    # Bandwidth: same order as the paper's 3.4 Mbps (our model counts
    # handshakes + keepalives; exact constants differ slightly).
    assert 0.5 < result["bandwidth_mbps"] < 10.0
    # CPU: well under one core-equivalent even in interpreted Python.
    assert result["core_equivalents"] < 1.0


def test_linearity(benchmark):
    """Maintenance cost must scale linearly — no superlinear blowup that
    would cap the full-mesh edomain peering requirement (§3.2)."""

    def sweep():
        return [_run_mesh(n, window=360.0) for n in (2_000, 4_000, 8_000)]

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    b2, b4, b8 = (p["bandwidth_mbps"] for p in points)
    assert b4 / b2 == pytest.approx(2.0, rel=0.05)
    assert b8 / b4 == pytest.approx(2.0, rel=0.05)


def teardown_module(module):
    if _results:
        _results.append(
            {
                "tunnels": f"{PAPER_TUNNELS} (paper)",
                "rekeys/6min": "-",
                "Mbps": PAPER_MBPS,
                "core-equiv": f"<{PAPER_CORES}",
            }
        )
        report(
            "Appendix C direct peering: tunnel maintenance",
            _results,
            ["tunnels", "rekeys/6min", "Mbps", "core-equiv"],
        )

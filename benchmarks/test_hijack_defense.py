"""A-HIJACK — prefix-hijack exposure: plain IP vs InterEdge (§6.2).

Sweeps hijacker placements over a realistic (preferential-attachment) AS
topology and reports, per placement, the fraction of ASes whose traffic is
captured — the plain-IP exposure — against InterEdge exposure, which is
zero captured *plaintext* flows because every SN pair speaks authenticated
PSP (a hijack can only black-hole, never read or spoof).
"""

from __future__ import annotations

import pytest

from repro.core.ilp import ILPHeader
from repro.core.psp import PSPContext, PSPError, pairwise_secret
from repro.netsim.ipnet import build_random_as_graph

from .conftest import report

_results: list[dict] = []

N_ASES = 60
PREFIX = "198.18.0.0/24"


def _exposure_sweep(n_placements: int = 10) -> list[dict]:
    rows = []
    for seed in range(n_placements):
        graph = build_random_as_graph(N_ASES, degree=2, seed=seed)
        victim, hijacker = 0, (seed * 7 + 13) % N_ASES or 1
        graph.originate(victim, PREFIX)
        graph.originate(hijacker, PREFIX)
        graph.converge()
        captured = graph.capture_fraction(victim, hijacker, PREFIX, range(N_ASES))

        # For each captured AS, the hijacker receives that AS's ILP
        # packets; count how many it can actually read or spoof.
        readable = 0
        for asn in range(N_ASES):
            if asn in (victim, hijacker):
                continue
            probe = "198.18.0.1"
            if graph.resolve_origin(asn, probe) != hijacker:
                continue
            sender_ctx = PSPContext(
                pairwise_secret(f"198.18.{asn}.1", "198.18.0.1")
            )
            wire = sender_ctx.seal(ILPHeader(service_id=2, connection_id=asn).encode())
            hijacker_ctx = PSPContext(
                pairwise_secret(f"198.18.{hijacker}.66", "198.18.0.1")
            )
            try:
                hijacker_ctx.open(wire)
                readable += 1
            except PSPError:
                pass
        rows.append(
            {
                "seed": seed,
                "captured_fraction": captured,
                "plain_ip_readable": captured,  # plaintext IP: capture = read
                "interedge_readable": readable / max(1, N_ASES - 2),
            }
        )
    return rows


def test_hijack_exposure(benchmark):
    rows = benchmark.pedantic(_exposure_sweep, rounds=1, iterations=1)
    captured = [r["captured_fraction"] for r in rows]
    # The underlay is genuinely vulnerable: some placements capture traffic.
    assert max(captured) > 0.1
    # InterEdge exposure is zero in every placement.
    assert all(r["interedge_readable"] == 0.0 for r in rows)
    avg = sum(captured) / len(captured)
    _results.append(
        {
            "metric": "mean captured fraction (10 placements)",
            "plain IP": f"{avg:.2%}",
            "InterEdge": "0.00%",
        }
    )
    _results.append(
        {
            "metric": "worst-case captured fraction",
            "plain IP": f"{max(captured):.2%}",
            "InterEdge": "0.00%",
        }
    )


def test_blackhole_is_detectable(benchmark):
    """What remains under InterEdge is availability loss — and because ILP
    pipes are authenticated and keepalive-monitored (WireGuard substrate),
    a black-holed pipe is detected within a keepalive interval."""
    from repro.wireguard import TunnelMesh

    def run():
        mesh = TunnelMesh("victim-sn", keepalive_interval=25.0)
        mesh.add_peer("peer-sn")
        report = mesh.advance(until=180.0)
        return report.keepalives

    keepalives = benchmark.pedantic(run, rounds=1, iterations=1)
    # 180s / 25s = 7 keepalives; silence for >25s flags the pipe.
    assert keepalives == 7


def teardown_module(module):
    if _results:
        report(
            "A-HIJACK: hijack exposure, plain IP vs InterEdge",
            _results,
            ["metric", "plain IP", "InterEdge"],
        )

"""Crypto fast-path microbenchmark: seed implementation vs. overhauled one.

The fast-path overhaul (cached :class:`~repro.core.crypto.SealingKey`
schedules, incremental keystream hashing, word XOR, one-allocation PSP
framing, memoized ILP encode) must be *measurably* faster and *bit-exactly*
compatible. This module enforces both:

* ``_legacy_seal``/``_legacy_open`` are a faithful copy of the seed
  implementation (two fresh HMAC subkey derivations per operation, fresh
  ``sha256(key || nonce || ctr)`` per keystream block, per-byte
  generator-expression XOR). Cross-compatibility is asserted in both
  directions over a grid of sizes and AADs.
* The seal+open throughput of the new path must be ≥ 3× the legacy path,
  measured in the same run on the same machine.
* ``BENCH_crypto.json`` is written at the repo root with pps and µs/op for
  {seal, open, terminus fast-path forward}, legacy baselines, and the
  speedups — so the perf trajectory stays comparable across PRs.

Run directly (no --benchmark-only needed):
    PYTHONPATH=src python -m pytest benchmarks/test_crypto_fastpath.py -q
"""

from __future__ import annotations

import hashlib
import hmac
import json
import struct
import time
from pathlib import Path

import pytest

from repro.core import crypto
from repro.core.decision_cache import CacheKey, Decision
from repro.core.ilp import ILPHeader, TLV
from repro.core.packet import ILPPacket, L3Header, make_payload
from repro.core.psp import PSPContext, pairwise_secret
from repro.core.service_node import ServiceNode
from repro.netsim import Simulator

_BLOCK = hashlib.sha256().digest_size
_RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_crypto.json"

_results: dict[str, dict] = {}


# -- the seed implementation, verbatim semantics ------------------------


def _legacy_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        blocks.append(
            hashlib.sha256(key + nonce + struct.pack(">I", counter)).digest()
        )
    return b"".join(blocks)[:length]


def _legacy_xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


def _legacy_mac_key(key: bytes) -> bytes:
    return crypto.derive_key(key, "ilp-mac")


def _legacy_enc_key(key: bytes) -> bytes:
    return crypto.derive_key(key, "ilp-enc")


def _legacy_seal(key: bytes, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    ciphertext = _legacy_xor(
        plaintext, _legacy_keystream(_legacy_enc_key(key), nonce, len(plaintext))
    )
    tag = hmac.new(
        _legacy_mac_key(key), nonce + aad + ciphertext, hashlib.sha256
    ).digest()[: crypto.TAG_SIZE]
    return ciphertext + tag


def _legacy_open(key: bytes, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    ciphertext, tag = sealed[: -crypto.TAG_SIZE], sealed[-crypto.TAG_SIZE :]
    expected = hmac.new(
        _legacy_mac_key(key), nonce + aad + ciphertext, hashlib.sha256
    ).digest()[: crypto.TAG_SIZE]
    if not hmac.compare_digest(tag, expected):
        raise crypto.CryptoError("authentication tag mismatch")
    return _legacy_xor(
        ciphertext, _legacy_keystream(_legacy_enc_key(key), nonce, len(ciphertext))
    )


# -- cross-compatibility ------------------------------------------------

SIZES = [0, 1, 31, 32, 33, 63, 64, 65, 100, 333, 1024]


class TestCrossCompat:
    """Old bytes open under new code and vice versa, bit for bit."""

    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("aad", [b"", b"aad-context"])
    def test_seal_open_both_directions(self, size, aad):
        key = crypto.random_key()
        gen = crypto.NonceGenerator()
        plaintext = bytes(range(256)) * (size // 256 + 1)
        plaintext = plaintext[:size]

        nonce = gen.next()
        legacy_blob = _legacy_seal(key, nonce, plaintext, aad)
        new_blob = crypto.seal(key, nonce, plaintext, aad)
        assert legacy_blob == new_blob
        assert crypto.open_sealed(key, nonce, legacy_blob, aad) == plaintext
        assert _legacy_open(key, nonce, new_blob, aad) == plaintext

    @pytest.mark.parametrize("size", SIZES)
    def test_keystream_identical(self, size):
        key = crypto.random_key()
        nonce = crypto.NonceGenerator().next()
        enc = _legacy_enc_key(key)
        assert crypto.sealing_key(key).keystream(nonce, size) == _legacy_keystream(
            enc, nonce, size
        )

    def test_tamper_still_detected(self):
        key = crypto.random_key()
        nonce = crypto.NonceGenerator().next()
        blob = bytearray(crypto.seal(key, nonce, b"payload"))
        blob[0] ^= 0xFF
        with pytest.raises(crypto.CryptoError):
            crypto.open_sealed(key, nonce, bytes(blob))
        with pytest.raises(crypto.CryptoError):
            _legacy_open(key, nonce, bytes(blob))

    def test_psp_wire_format_unchanged(self):
        """A PSP blob still opens via hand-rolled legacy parsing."""
        secret = pairwise_secret("10.0.0.1", "10.0.0.2")
        tx = PSPContext(secret)
        blob = tx.seal(b"ilp header bytes")
        epoch, nonce = struct.unpack_from(">B8s", blob)
        key = crypto.derive_key(secret, "psp-epoch", bytes([epoch]))
        assert _legacy_open(key, nonce, blob[9:]) == b"ilp header bytes"


# -- measurement --------------------------------------------------------


def _measure(fn, *, min_seconds: float = 0.25) -> tuple[float, float]:
    """Run ``fn`` repeatedly for ~min_seconds; return (ops/sec, µs/op)."""
    fn()  # warm caches (schedules, memos) outside the timed region
    n = 0
    start = time.perf_counter()
    deadline = start + min_seconds
    while True:
        for _ in range(200):
            fn()
        n += 200
        now = time.perf_counter()
        if now >= deadline:
            break
    elapsed = now - start
    return n / elapsed, elapsed / n * 1e6


HEADER_BYTES = None


def _header_bytes() -> bytes:
    h = ILPHeader(service_id=2, connection_id=123456)
    h.set_str(TLV.DEST_ADDR, "192.168.0.77")
    h.set_str(TLV.SRC_HOST, "192.168.0.12")
    return h.encode()


def test_seal_open_speedup_vs_seed():
    """The acceptance gate: ≥ 3× seal+open throughput over the seed path."""
    key = crypto.random_key()
    nonce = crypto.NonceGenerator().next()
    plaintext = _header_bytes()
    blob = crypto.seal(key, nonce, plaintext)

    legacy_seal_pps, legacy_seal_us = _measure(
        lambda: _legacy_seal(key, nonce, plaintext)
    )
    legacy_open_pps, legacy_open_us = _measure(
        lambda: _legacy_open(key, nonce, blob)
    )
    new_seal_pps, new_seal_us = _measure(lambda: crypto.seal(key, nonce, plaintext))
    new_open_pps, new_open_us = _measure(
        lambda: crypto.open_sealed(key, nonce, blob)
    )

    seal_speedup = new_seal_pps / legacy_seal_pps
    open_speedup = new_open_pps / legacy_open_pps
    combined = (new_seal_pps * new_open_pps * (legacy_seal_pps + legacy_open_pps)) / (
        legacy_seal_pps * legacy_open_pps * (new_seal_pps + new_open_pps)
    )  # ratio of harmonic-mean throughputs == ratio of seal+open round trips

    _results["seal"] = {
        "pps": round(new_seal_pps, 1),
        "us_per_op": round(new_seal_us, 3),
        "seed_pps": round(legacy_seal_pps, 1),
        "seed_us_per_op": round(legacy_seal_us, 3),
        "speedup": round(seal_speedup, 2),
    }
    _results["open"] = {
        "pps": round(new_open_pps, 1),
        "us_per_op": round(new_open_us, 3),
        "seed_pps": round(legacy_open_pps, 1),
        "seed_us_per_op": round(legacy_open_us, 3),
        "speedup": round(open_speedup, 2),
    }
    _results["seal_open_roundtrip_speedup"] = {"speedup": round(combined, 2)}

    assert combined >= 3.0, (
        f"seal+open speedup {combined:.2f}x < 3x "
        f"(seal {seal_speedup:.2f}x, open {open_speedup:.2f}x)"
    )


SN_ADDR = "10.0.0.1"
INGRESS = "10.0.0.2"
EGRESS = "10.0.0.3"


def test_terminus_fastpath_forward_throughput():
    """Assembled Figure 2 fast path via batch ingress: decrypt → decode →
    cache hit → encode (memoized) → re-encrypt → transmit."""
    sim = Simulator()
    node = ServiceNode(sim, "sn", SN_ADDR)
    delivered = [0]

    def sink(peer: str, packet: ILPPacket) -> bool:
        delivered[0] += 1
        return True

    node.terminus._transmit = sink
    secret_in = pairwise_secret(SN_ADDR, INGRESS)
    node.keystore.establish(INGRESS, secret_in)
    node.keystore.establish(EGRESS, pairwise_secret(SN_ADDR, EGRESS))
    node.cache.install(CacheKey(INGRESS, 2, 123456), Decision.forward(EGRESS))
    tx = PSPContext(secret_in)
    payload = make_payload(b"x" * 64)
    header_bytes = _header_bytes()

    def make_batch(n: int) -> list[ILPPacket]:
        return [
            ILPPacket(
                l3=L3Header(src=INGRESS, dst=SN_ADDR),
                ilp_wire=tx.seal(header_bytes),
                payload=payload,
            )
            for _ in range(n)
        ]

    # Warmup, then timed batches (packet construction outside the window).
    node.terminus.receive_batch(make_batch(200))
    total = 0
    elapsed = 0.0
    while elapsed < 0.3:
        batch = make_batch(1000)
        t0 = time.perf_counter()
        node.terminus.receive_batch(batch)
        elapsed += time.perf_counter() - t0
        total += len(batch)

    pps = total / elapsed
    _results["terminus_forward"] = {
        "pps": round(pps, 1),
        "us_per_op": round(elapsed / total * 1e6, 3),
        "batch": 1000,
    }
    assert delivered[0] == total + 200
    assert node.terminus.stats.fast_path == total + 200


def teardown_module(module):
    if not _results:
        return
    _results["meta"] = {
        "note": "ops on one core of this container; header = 2-TLV ILP header",
        "header_bytes": len(_header_bytes()),
    }
    _RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
    print(f"\nwrote {_RESULTS_PATH}")
    for name in ("seal", "open", "terminus_forward"):
        if name in _results:
            print(f"  {name}: {_results[name]}")

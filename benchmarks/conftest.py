"""Shared benchmark scaffolding.

Each benchmark file regenerates one paper artifact (see DESIGN.md §3) and
prints a paper-shaped table via :func:`report` so `pytest benchmarks/
--benchmark-only` output can be compared against the paper directly.
"""

from __future__ import annotations

import pytest


def report(title: str, rows: list[dict], columns: list[str]) -> None:
    """Print a fixed-width table (shown with pytest -s or in summaries)."""
    print(f"\n=== {title} ===")
    widths = {
        col: max(len(col), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))


@pytest.fixture(scope="session")
def results_sink():
    """Collects per-benchmark summaries; printed once at session end."""
    sink: dict[str, list[dict]] = {}
    yield sink
    for title, rows in sink.items():
        if rows:
            report(title, rows, list(rows[0].keys()))

"""A-CACHE — ablation: decision-cache size vs datapath throughput.

Appendix B allows arbitrary eviction so the cache can be small; this
ablation quantifies the cost of that freedom. We drive F flows through a
terminus whose cache holds C entries, C/F ∈ {2.0, 1.0, 0.5, 0.1, 0}, and
report packets/sec plus hit rate. Expected shape: throughput degrades
smoothly as the working set exceeds capacity (falling toward the
null-service floor), and correctness never does — every packet still
arrives.
"""

from __future__ import annotations

import pytest

from repro.core.decision_cache import CacheKey, Decision
from repro.core.ilp import ILPHeader, TLV
from repro.core.packet import ILPPacket, L3Header, make_payload
from repro.core.psp import PSPContext, pairwise_secret
from repro.core.service_node import ServiceNode
from repro.core.service_module import ServiceModule, Verdict
from repro.netsim import Simulator

from .conftest import report

SN_ADDR = "10.0.0.1"
INGRESS = "10.0.0.2"
EGRESS = "10.0.0.3"

_results: list[dict] = []


class _InstallingService(ServiceModule):
    """Forwards and installs — the IPDelivery pattern, minimal form."""

    SERVICE_ID = 0x0002
    NAME = "bench-delivery"

    def handle_packet(self, header: ILPHeader, packet) -> Verdict:
        verdict = Verdict.forward(EGRESS, header, packet.payload)
        verdict.installs.append(
            (
                CacheKey(packet.l3.src, self.SERVICE_ID, header.connection_id),
                Decision.forward(EGRESS),
            )
        )
        return verdict


def _make_rig(cache_capacity: int):
    sim = Simulator()
    node = ServiceNode(sim, "sn", SN_ADDR, cache_capacity=max(1, cache_capacity))
    delivered = []
    node.terminus._transmit = lambda peer, pkt: (delivered.append(peer), True)[1]
    secret = pairwise_secret(SN_ADDR, INGRESS)
    node.keystore.establish(INGRESS, secret)
    node.keystore.establish(EGRESS, pairwise_secret(SN_ADDR, EGRESS))
    node.env.load(_InstallingService())
    if cache_capacity == 0:
        # "No cache": evict everything after each install via capacity 1
        # plus forced eviction in the driver.
        pass
    return node, PSPContext(secret), delivered


def _drive(node, tx_ctx, n_flows: int, packets_per_flow: int, flush: bool):
    payload = make_payload(b"y" * 64)
    count = 0
    for round_i in range(packets_per_flow):
        for flow in range(n_flows):
            header = ILPHeader(service_id=0x0002, connection_id=flow)
            header.set_str(TLV.DEST_ADDR, "192.168.0.9")
            pkt = ILPPacket(
                l3=L3Header(src=INGRESS, dst=SN_ADDR),
                ilp_wire=tx_ctx.seal(header.encode()),
                payload=payload,
            )
            node.terminus.receive(pkt)
            count += 1
            if flush:
                node.cache.evict_random_fraction(1.0)
    return count


@pytest.mark.parametrize(
    "label,capacity_ratio",
    [
        ("2.0x", 2.0),
        ("1.0x", 1.0),
        ("0.5x", 0.5),
        ("0.1x", 0.1),
        ("none", 0.0),
    ],
)
def test_cache_capacity_sweep(benchmark, label, capacity_ratio):
    n_flows = 200
    capacity = int(n_flows * capacity_ratio)
    node, tx_ctx, delivered = _make_rig(capacity or 1)
    flush = capacity_ratio == 0.0

    count = benchmark.pedantic(
        _drive,
        args=(node, tx_ctx, n_flows, 10, flush),
        rounds=1,
        iterations=1,
    )
    stats = node.terminus.stats
    total = stats.fast_path + stats.punts
    # Correctness: every packet was forwarded regardless of cache pressure.
    assert len(delivered) == count
    _results.append(
        {
            "capacity/flows": label,
            "hit_rate": f"{node.cache.stats.hit_rate:.2f}",
            "fast_path": stats.fast_path,
            "punts": stats.punts,
        }
    )
    if capacity_ratio >= 1.0:
        # Ample cache: only first packet per flow punts.
        assert stats.punts == n_flows
    if flush:
        assert stats.fast_path == 0


def test_lru_beats_random_under_skew(benchmark):
    """Zipf-ish skew: LRU keeps the hot flows resident."""
    import random as random_mod

    from repro.core.decision_cache import DecisionCache, EvictionPolicy

    rng = random_mod.Random(7)
    flows = [int(rng.paretovariate(1.2)) % 500 for _ in range(20_000)]

    def run(policy):
        cache = DecisionCache(capacity=50, policy=policy)
        for flow in flows:
            key = CacheKey("10.0.0.2", 1, flow)
            if cache.lookup(key) is None:
                cache.install(key, Decision.drop())
        return cache.stats.hit_rate

    def both():
        return run(EvictionPolicy.LRU), run(EvictionPolicy.RANDOM)

    lru_rate, random_rate = benchmark.pedantic(both, rounds=1, iterations=1)
    _results.append(
        {
            "capacity/flows": "LRU-vs-RANDOM(skewed)",
            "hit_rate": f"{lru_rate:.2f} vs {random_rate:.2f}",
            "fast_path": "-",
            "punts": "-",
        }
    )
    assert lru_rate >= random_rate - 0.02


def teardown_module(module):
    if _results:
        report(
            "A-CACHE: decision-cache capacity ablation",
            _results,
            ["capacity/flows", "hit_rate", "fast_path", "punts"],
        )

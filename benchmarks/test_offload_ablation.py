"""A-OFFLOAD — ablation: terminus offload vs slow-path service (§B.1).

Appendix B.1 lets services push simple match+action work (e.g. scrubbing
a flood source, metering) into the pipe-terminus. This bench measures the
same drop-everything-from-source policy executed three ways:

* slow path: every packet punts over IPC to a service that drops it;
* offload rule: the terminus drops after header decrypt — no IPC;
* decision cache: a DROP entry — the theoretical fastest.

Expected shape: cache ≥ offload ≫ slow path.
"""

from __future__ import annotations

import time

import pytest

from repro.core.decision_cache import CacheKey, Decision
from repro.core.ilp import ILPHeader
from repro.core.offload import ActionKind, Match, MatchField, OffloadAction
from repro.core.packet import ILPPacket, L3Header, make_payload
from repro.core.psp import PSPContext, pairwise_secret
from repro.core.service_node import ServiceNode
from repro.core.service_module import ServiceModule, Verdict
from repro.netsim import Simulator

from .conftest import report

SN_ADDR = "10.0.0.1"
ATTACKER = "10.0.0.66"

_results: list[dict] = []


class _DropService(ServiceModule):
    SERVICE_ID = 0x0B0B
    NAME = "bench-dropper"

    def handle_packet(self, header, packet) -> Verdict:
        return Verdict.drop()


def _rig(mode: str):
    sim = Simulator()
    node = ServiceNode(sim, "sn", SN_ADDR)
    node.terminus._transmit = lambda peer, pkt: True
    secret = pairwise_secret(SN_ADDR, ATTACKER)
    node.keystore.establish(ATTACKER, secret)
    node.env.load(_DropService())
    if mode == "offload":
        node.terminus.offload.install_rule(
            _DropService.SERVICE_ID,
            (Match(MatchField.SRC_ADDR, ATTACKER),),
            OffloadAction(ActionKind.DROP),
        )
    elif mode == "cache":
        node.cache.install(
            CacheKey(ATTACKER, _DropService.SERVICE_ID, 7), Decision.drop()
        )
    tx = PSPContext(secret)
    header = ILPHeader(service_id=_DropService.SERVICE_ID, connection_id=7)
    wire = tx.seal(header.encode())
    payload = make_payload(b"f" * 64)

    def make_packet():
        return ILPPacket(
            l3=L3Header(src=ATTACKER, dst=SN_ADDR),
            ilp_wire=tx.seal(header.encode()),
            payload=payload,
        )

    return node, make_packet


def _measure(mode: str, n: int = 3000) -> float:
    node, make_packet = _rig(mode)
    packets = [make_packet() for _ in range(n)]
    start = time.perf_counter()
    for packet in packets:
        node.terminus.receive(packet)
    elapsed = time.perf_counter() - start
    return n / elapsed


@pytest.mark.parametrize("mode", ["slowpath", "offload", "cache"])
def test_drop_throughput(benchmark, mode):
    pps = benchmark.pedantic(_measure, args=(mode,), rounds=1, iterations=1)
    _results.append({"mechanism": mode, "drop PPS": f"{pps:,.0f}"})


def test_offload_beats_slow_path(benchmark):
    def compare():
        _measure("slowpath", 500)  # warmup
        return (
            _measure("slowpath"),
            _measure("offload"),
            _measure("cache"),
        )

    slow, offload, cache = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert offload > slow * 1.5  # no IPC round trip
    assert cache > slow * 1.5
    _results.append(
        {
            "mechanism": "offload/slowpath speedup",
            "drop PPS": f"{offload / slow:.1f}x",
        }
    )


def teardown_module(module):
    if _results:
        report(
            "A-OFFLOAD: drop-policy execution point",
            _results,
            ["mechanism", "drop PPS"],
        )

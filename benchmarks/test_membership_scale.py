"""A-MCAST — multipoint membership-plane scaling (§6.2).

The paper's changed anycast/multicast semantics (sender registration) buy
state proportionality: an SN holds state only for groups with local
members or senders; the core holds per-(group, member-SN) entries; the
lookup service per-(group, member-edomain) entries. This benchmark sweeps
groups × members, measures join throughput, and asserts the state bounds.
"""

from __future__ import annotations

import pytest

from repro.control.core_store import CoreStore
from repro.control.lookup import GlobalLookupService
from repro.control.membership import EdomainMembershipCore, SNMembershipAgent
from repro.core.crypto import KeyPair

from .conftest import report

_results: list[dict] = []


def _world(n_edomains: int, sns_per_edomain: int):
    lookup = GlobalLookupService()
    owner = KeyPair.generate()
    cores = {}
    agents = []
    for d in range(n_edomains):
        name = f"dom{d}"
        cores[name] = EdomainMembershipCore(name, CoreStore(name), lookup)
        for s in range(sns_per_edomain):
            agents.append(
                SNMembershipAgent(f"10.{d}.{s}.1", cores[name], lookup)
            )
    return lookup, owner, cores, agents


def _register_hosts(lookup, n: int) -> list[str]:
    hosts = []
    for i in range(n):
        addr = f"192.168.{i // 250}.{i % 250 + 1}"
        lookup.register_address(addr, KeyPair.generate())
        hosts.append(addr)
    return hosts


def _join_storm(n_groups: int, members_per_group: int):
    lookup, owner, cores, agents = _world(n_edomains=4, sns_per_edomain=4)
    for g in range(n_groups):
        group = f"g{g}"
        lookup.register_group(group, owner)
        lookup.post_open_group(group, owner)
    hosts = _register_hosts(lookup, members_per_group)
    joins = 0
    for g in range(n_groups):
        for m, host in enumerate(hosts):
            agent = agents[(g + m) % len(agents)]
            assert agent.join(f"g{g}", host)
            joins += 1
    return lookup, cores, agents, joins


@pytest.mark.parametrize(
    "n_groups,members", [(10, 10), (50, 20), (100, 50)]
)
def test_join_throughput_and_state(benchmark, n_groups, members):
    lookup, cores, agents, joins = benchmark.pedantic(
        _join_storm, args=(n_groups, members), rounds=1, iterations=1
    )
    time_s = benchmark.stats.stats.mean
    state = lookup.state_size()
    # Lookup state is bounded by groups x edomains, NOT groups x members.
    assert state["group_edomain_entries"] <= n_groups * 4
    core_entries = sum(
        core.state_size()["member_entries"] for core in cores.values()
    )
    # Core state is bounded by groups x SNs, NOT groups x members.
    assert core_entries <= n_groups * 16
    _results.append(
        {
            "groups": n_groups,
            "members/group": members,
            "joins/s": f"{joins / time_s:,.0f}",
            "lookup entries": state["group_edomain_entries"],
            "core entries": core_entries,
        }
    )


def test_sender_watch_fanout(benchmark):
    """A sender's view stays fresh under churn; cost is per-event O(watchers)."""

    def run():
        lookup, owner, cores, agents = _world(n_edomains=2, sns_per_edomain=8)
        lookup.register_group("busy", owner)
        lookup.post_open_group("busy", owner)
        hosts = _register_hosts(lookup, 64)
        sender_agent = agents[0]
        lookup.register_address("192.168.99.1", KeyPair.generate())
        sender_agent.register_sender("busy", "192.168.99.1")
        # Churn: join/leave across all other SNs.
        for i, host in enumerate(hosts):
            agents[1 + i % (len(agents) - 1)].join("busy", host)
        for i, host in enumerate(hosts[::2]):
            agents[1 + (i * 2) % (len(agents) - 1)].leave("busy", host)
        return sender_agent

    sender_agent = benchmark.pedantic(run, rounds=1, iterations=1)
    # The view matches the core's ground truth after all the churn.
    truth = sender_agent.core.member_sns("busy")
    assert sender_agent.member_sns_in_edomain("busy") == truth


def teardown_module(module):
    if _results:
        report(
            "A-MCAST: membership plane scaling",
            _results,
            ["groups", "members/group", "joins/s", "lookup entries", "core entries"],
        )
